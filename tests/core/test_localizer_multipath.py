"""Multipath-aware localizer: suspicion rules and graceful degradation."""

import numpy as np
import pytest

from repro.core.localizer import (
    FLOWLET_SPLIT,
    MULTIPATH_SUSPECT,
    LocalizationOutcome,
    Mechanism,
    SimultaneousReplayResult,
    WeHeYLocalizer,
)
from repro.netsim.capture import PathMeasurements
from repro.obs import metrics as obs_metrics
from repro.wehe.traces import Trace


def trace_pair():
    original = Trace("app", "udp", ((0.0, 500), (0.02, 500)), sni="x.com")
    inverted = Trace("app", "udp", ((0.0, 500), (0.02, 500)), sni=None)
    return original, inverted


def throughput(rng, mean, n=100, cv=0.03):
    return rng.normal(mean, cv * mean, n)


def measurements(rng, regime="shared"):
    """Loss logs: 'shared', 'independent', or 'flips' mid-test."""
    sends = np.sort(rng.uniform(0, 60, 12000))
    trend = 1.0 + 0.8 * np.sin(2 * np.pi * sends / 8.0)
    p1 = np.clip(0.03 * trend, 0, 1)
    anti = np.clip(0.03 * (2.0 - trend), 0, 1)
    if regime == "shared":
        p2 = p1
    elif regime == "independent":
        p2 = anti
    else:  # flips: correlated first half, anti-correlated second half
        p2 = np.where(sends < 30.0, p1, anti)
    m1 = PathMeasurements(sends, sends[rng.random(len(sends)) < p1], 0.035)
    m2 = PathMeasurements(sends, sends[rng.random(len(sends)) < p2], 0.035)
    return m1, m2


class FakeService:
    """Scripted replays with independent per-path simultaneous means."""

    def __init__(
        self,
        rng,
        single_mean=2.5e6,
        sim_means=(1.25e6, 1.25e6),
        inverted_mean=8e6,
        regime="shared",
    ):
        self.rng = rng
        self.single_mean = single_mean
        self.sim_means = sim_means
        self.inverted_mean = inverted_mean
        self.regime = regime

    def single_replay(self, trace):
        return throughput(self.rng, self.single_mean)

    def simultaneous_replay(self, trace):
        if trace.is_original:
            mean_1, mean_2 = self.sim_means
        else:
            mean_1 = mean_2 = self.inverted_mean
        m1, m2 = measurements(self.rng, regime=self.regime)
        return SimultaneousReplayResult(
            samples_1=throughput(self.rng, mean_1),
            samples_2=throughput(self.rng, mean_2),
            measurements_1=m1,
            measurements_2=m2,
        )


@pytest.fixture
def rng():
    return np.random.default_rng(31)


@pytest.fixture
def tdiff(rng):
    return rng.normal(0.0, 0.08, 100)


def localize(service, rng, tdiff, aware=True):
    localizer = WeHeYLocalizer(rng, tdiff, multipath_aware=aware)
    original, inverted = trace_pair()
    return localizer.localize(service, original, inverted)


class TestSuspicionRules:
    def test_asymmetric_shares_flag_suspect(self, rng, tdiff):
        # One replay at 2.2, the other at 1.1 of a 2.5 single mean:
        # different members, different background mixes.
        service = FakeService(
            rng, sim_means=(2.2e6, 1.1e6), regime="shared"
        )
        report = localize(service, rng, tdiff)
        assert report.reason_code == MULTIPATH_SUSPECT
        assert report.multipath_suspect
        assert report.outcome is LocalizationOutcome.NO_EVIDENCE
        assert report.mechanism is Mechanism.NONE
        # The loss trend did correlate: that is the verdict the
        # suspicion vetoed.
        assert report.fallback_reason_code == "collective-throttling"

    def test_super_additive_aggregate_flags_suspect(self, rng, tdiff):
        # Symmetric, but each path sustains ~1.5x the single replay:
        # two limiter instances, not one shared one.
        service = FakeService(
            rng, sim_means=(3.8e6, 3.8e6), regime="independent"
        )
        report = localize(service, rng, tdiff)
        assert report.reason_code == MULTIPATH_SUSPECT
        assert report.fallback_reason_code == "no-common-bottleneck"

    def test_flowlet_regime_change_flags_split(self, rng, tdiff):
        # Aggregate (2.0) clearly below the single mean (2.5), so the
        # per-client branch stays quiet and suspicion is evaluated.
        service = FakeService(
            rng, sim_means=(1.0e6, 1.0e6), regime="flips"
        )
        report = localize(service, rng, tdiff)
        assert report.reason_code == FLOWLET_SPLIT
        assert report.multipath_suspect

    def test_symmetric_shared_shares_still_localize(self, rng, tdiff):
        # The genuine collective cell: symmetric sub-single shares and
        # a shared loss trend must keep localizing when aware.
        service = FakeService(
            rng, sim_means=(1.0e6, 1.0e6), regime="shared"
        )
        report = localize(service, rng, tdiff)
        assert report.reason_code == "collective-throttling"
        assert not report.multipath_suspect
        assert report.localized

    def test_unaware_localizer_unchanged(self, rng, tdiff):
        # The legacy pipeline must return the confident (wrong) verdict
        # -- byte-for-byte the pre-multipath behaviour.
        service = FakeService(
            rng, sim_means=(2.2e6, 1.1e6), regime="shared"
        )
        report = localize(service, rng, tdiff, aware=False)
        assert report.reason_code == "collective-throttling"
        assert not report.multipath_suspect
        assert report.fallback_reason_code == ""

    def test_suspect_obs_counter_booked(self, rng, tdiff):
        service = FakeService(
            rng, sim_means=(2.2e6, 1.1e6), regime="shared"
        )
        sink = obs_metrics.MetricsSink()
        with obs_metrics.use_sink(sink):
            report = localize(service, rng, tdiff)
        assert report.multipath_suspect
        counters = sink.snapshot()["counters"]
        assert counters["localizer.suspect.multipath-suspect"] == 1


class TestReportShape:
    def test_suspect_report_carries_detector_results(self, rng, tdiff):
        service = FakeService(
            rng, sim_means=(2.2e6, 1.1e6), regime="shared"
        )
        report = localize(service, rng, tdiff)
        assert report.confirmation_1 is not None
        assert report.confirmation_2 is not None
        assert report.loss_result is not None

    def test_fallback_reason_default_empty(self, rng, tdiff):
        service = FakeService(rng, sim_means=(1.25e6, 1.25e6))
        report = localize(service, rng, tdiff)
        if not report.multipath_suspect:
            assert report.fallback_reason_code == ""
