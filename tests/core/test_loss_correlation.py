"""Algorithm-1 tests on synthetic measurements with known ground truth."""

import numpy as np
import pytest

from repro.core.loss_correlation import LossTrendCorrelation
from repro.netsim.capture import PathMeasurements


def synthetic_paths(
    rng,
    duration=60.0,
    rate_pps=200,
    rtt=0.035,
    shared_trend=True,
    base_loss=0.03,
    trend_amplitude=0.8,
    trend_period=8.0,
):
    """Two paths whose loss processes share (or don't) a slow trend."""

    def one_path(phase):
        sends = np.sort(rng.uniform(0, duration, int(rate_pps * duration)))
        trend = 1.0 + trend_amplitude * np.sin(2 * np.pi * sends / trend_period + phase)
        p_loss = np.clip(base_loss * trend, 0, 1)
        lost = sends[rng.random(len(sends)) < p_loss]
        return PathMeasurements(sends, lost, rtt)

    if shared_trend:
        return one_path(0.0), one_path(0.0)
    # Opposite phases: trends are maximally decorrelated.
    return one_path(0.0), one_path(np.pi)


@pytest.fixture
def rng():
    return np.random.default_rng(101)


class TestDetection:
    def test_shared_trend_detected(self, rng):
        m1, m2 = synthetic_paths(rng, shared_trend=True)
        result = LossTrendCorrelation().detect(m1, m2)
        assert result.common_bottleneck
        assert result.correlated_fraction > 0.95

    def test_opposite_trend_rejected(self, rng):
        m1, m2 = synthetic_paths(rng, shared_trend=False)
        result = LossTrendCorrelation().detect(m1, m2)
        assert not result.common_bottleneck

    def test_independent_noise_rejected(self, rng):
        m1, _ = synthetic_paths(rng, trend_amplitude=0.0)
        m2, _ = synthetic_paths(np.random.default_rng(202), trend_amplitude=0.0)
        result = LossTrendCorrelation().detect(m1, m2)
        assert not result.common_bottleneck

    def test_no_loss_is_inconclusive(self, rng):
        sends = np.sort(rng.uniform(0, 60, 6000))
        m1 = PathMeasurements(sends, [], rtt=0.035)
        m2 = PathMeasurements(sends, [], rtt=0.035)
        result = LossTrendCorrelation().detect(m1, m2)
        assert not result.common_bottleneck
        assert result.n_correlated == 0

    def test_desynchronized_registration_tolerated(self, rng):
        # Shift path 2's loss registrations by ~3 RTTs: the multi-RTT
        # interval sizes must absorb this (Section 4.2's rationale).
        m1, m2 = synthetic_paths(rng, shared_trend=True)
        shifted = PathMeasurements(m2.send_times, m2.loss_times + 0.1, m2.rtt)
        result = LossTrendCorrelation().detect(m1, shifted)
        assert result.common_bottleneck


class TestConfiguration:
    def test_interval_sizes_scale_with_rtt(self, rng):
        m1, m2 = synthetic_paths(rng, rtt=0.05)
        alg = LossTrendCorrelation(rtt_multiples=(10, 50))
        sizes = alg.interval_sizes(m1, m2)
        assert sizes == [pytest.approx(0.5), pytest.approx(2.5)]

    def test_larger_rtt_of_the_two_wins(self, rng):
        m1, _ = synthetic_paths(rng, rtt=0.02)
        _, m2 = synthetic_paths(rng, rtt=0.08)
        alg = LossTrendCorrelation(rtt_multiples=(10,))
        assert alg.interval_sizes(m1, m2) == [pytest.approx(0.8)]

    def test_rejects_bad_fp_rate(self):
        with pytest.raises(ValueError):
            LossTrendCorrelation(fp_rate=0.0)
        with pytest.raises(ValueError):
            LossTrendCorrelation(fp_rate=1.0)

    def test_rejects_empty_multiples(self):
        with pytest.raises(ValueError):
            LossTrendCorrelation(rtt_multiples=())

    def test_verdict_details_exposed(self, rng):
        m1, m2 = synthetic_paths(rng)
        result = LossTrendCorrelation(rtt_multiples=(10, 20, 30)).detect(m1, m2)
        assert result.n_intervals_tested == 3
        assert len(result.per_interval) == 3
        for verdict in result.per_interval:
            assert 0.0 <= verdict.pvalue <= 1.0

    def test_threshold_rule_is_strict(self, rng):
        # With 2 sizes and FP=0.05, (1-FP)*2 = 1.9: both must correlate.
        m1, m2 = synthetic_paths(rng)
        result = LossTrendCorrelation(rtt_multiples=(10, 50)).detect(m1, m2)
        if result.common_bottleneck:
            assert result.n_correlated == 2
