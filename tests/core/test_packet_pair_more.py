"""Packet-pair baseline: false-positive behaviour and knobs."""

import numpy as np
import pytest

from repro.core.packet_pair import PacketPairCorrelation
from repro.netsim.capture import PathMeasurements


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestPacketPairFalsePositives:
    def test_independent_random_losses_rarely_detected(self, rng):
        detections = 0
        for seed in range(10):
            local = np.random.default_rng(seed)
            sends = np.sort(local.uniform(0, 60, 6000))
            m1 = PathMeasurements(sends, local.uniform(0, 60, 80), 0.035)
            m2 = PathMeasurements(sends, local.uniform(0, 60, 80), 0.035)
            detections += PacketPairCorrelation().detect(m1, m2)
        assert detections <= 2  # ~alpha-level false positives

    def test_rtt_multiple_scales_window(self, rng):
        sends = np.sort(rng.uniform(0, 60, 6000))
        lost = np.sort(rng.uniform(0, 60, 100))
        m1 = PathMeasurements(sends, lost, 0.035)
        m2 = PathMeasurements(sends, lost + 0.2, 0.035)  # 200 ms shifted
        # At 1-RTT windows the 200 ms shift decorrelates the indicators;
        # at 10-RTT windows they re-align.
        assert not PacketPairCorrelation(rtt_multiple=1.0).detect(m1, m2)
        assert PacketPairCorrelation(rtt_multiple=10.0).detect(m1, m2)

    def test_rejects_bad_multiple(self):
        with pytest.raises(ValueError):
            PacketPairCorrelation(rtt_multiple=0.0)

    def test_too_few_losses_inconclusive(self, rng):
        sends = np.sort(rng.uniform(0, 60, 6000))
        m1 = PathMeasurements(sends, [10.0], 0.035)
        m2 = PathMeasurements(sends, [10.0], 0.035)
        assert not PacketPairCorrelation().detect(m1, m2)
