"""Throughput-comparison (Section 4.1) tests."""

import numpy as np
import pytest

from repro.core.throughput_comparison import (
    ThroughputComparison,
    aggregate_simultaneous_samples,
)


@pytest.fixture
def rng():
    return np.random.default_rng(55)


def tdiff_samples(rng, cv=0.08, n=100):
    """Synthetic normal-variation distribution (relative differences)."""
    return rng.normal(0.0, cv, n)


class TestDetect:
    def test_per_client_throttling_detected(self, rng):
        # X and Y both equal the throttle rate: their difference is far
        # smaller than normal test-to-test variation.
        x = rng.normal(2.5e6, 0.05e6, 100)
        y = rng.normal(2.5e6, 0.05e6, 100)
        result = ThroughputComparison(rng).detect(x, y, tdiff_samples(rng))
        assert result.common_bottleneck
        assert result.pvalue < 0.05

    def test_shared_with_other_traffic_rejected(self, rng):
        # Y clearly differs from X (Figure 2b): no dedicated queue.
        x = rng.normal(4.0e6, 0.2e6, 100)
        y = rng.normal(2.0e6, 0.2e6, 100)
        result = ThroughputComparison(rng).detect(x, y, tdiff_samples(rng))
        assert not result.common_bottleneck

    def test_rejects_y_larger_than_x_too(self, rng):
        # A large gap in either direction is evidence against a
        # dedicated per-client queue (magnitude comparison).
        x = rng.normal(2.0e6, 0.2e6, 100)
        y = rng.normal(4.0e6, 0.2e6, 100)
        result = ThroughputComparison(rng).detect(x, y, tdiff_samples(rng))
        assert not result.common_bottleneck

    def test_insufficient_tdiff_refuses(self, rng):
        x = rng.normal(2.5e6, 0.05e6, 100)
        result = ThroughputComparison(rng, min_tdiff_samples=20).detect(
            x, x, tdiff_samples(rng, n=5)
        )
        assert not result.common_bottleneck
        assert result.pvalue == 1.0

    def test_odiff_size_matches_tdiff(self, rng):
        x = rng.normal(2.5e6, 0.05e6, 100)
        tdiff = tdiff_samples(rng, n=73)
        result = ThroughputComparison(rng).detect(x, x, tdiff)
        assert len(result.odiff) == 73

    def test_requires_enough_samples(self, rng):
        with pytest.raises(ValueError):
            ThroughputComparison(rng).detect([1.0], [1.0, 2.0, 3.0, 4.0], tdiff_samples(rng))

    def test_borderline_variation_is_conservative(self, rng):
        # X-Y difference comparable to normal variation: we should NOT
        # claim a common bottleneck.
        x = rng.normal(2.5e6, 0.05e6, 100)
        y = x * (1 + 0.25)  # 25% gap >> 8% normal variation
        result = ThroughputComparison(rng).detect(x, y, tdiff_samples(rng, cv=0.08))
        assert not result.common_bottleneck


class TestAggregate:
    def test_elementwise_sum(self):
        y = aggregate_simultaneous_samples([1.0, 2.0], [10.0, 20.0])
        np.testing.assert_allclose(y, [11.0, 22.0])

    def test_truncates_to_shorter(self):
        y = aggregate_simultaneous_samples([1.0, 2.0, 3.0], [10.0])
        np.testing.assert_allclose(y, [11.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_simultaneous_samples([], [])
