"""Tomography-baseline tests (Algorithms 2-4 and V2)."""

import numpy as np
import pytest

from repro.core.packet_pair import PacketPairCorrelation
from repro.core.tomography import (
    BinLossTomo,
    BinLossTomoNoParams,
    BinLossTomoPlusPlus,
    TrendLossTomo,
    path_loss_series,
)
from repro.netsim.capture import PathMeasurements


def measurements_with_common_bottleneck(rng, duration=60.0, rtt=0.035):
    """Both paths lose in the same (bursty) episodes: lc is the cause."""
    episodes = rng.uniform(0, duration, 12)

    def one_path():
        sends = np.sort(rng.uniform(0, duration, int(200 * duration)))
        p = np.full(len(sends), 0.002)
        for episode in episodes:
            p[np.abs(sends - episode) < 1.0] = 0.15
        lost = sends[rng.random(len(sends)) < p]
        return PathMeasurements(sends, lost, rtt)

    return one_path(), one_path()


def measurements_with_independent_loss(rng, duration=60.0, rtt=0.035):
    """Each path loses in its own episodes: no common bottleneck."""

    def one_path(episode_rng):
        episodes = episode_rng.uniform(0, duration, 12)
        sends = np.sort(episode_rng.uniform(0, duration, int(200 * duration)))
        p = np.full(len(sends), 0.002)
        for episode in episodes:
            p[np.abs(sends - episode) < 1.0] = 0.15
        lost = sends[episode_rng.random(len(sends)) < p]
        return PathMeasurements(sends, lost, rtt)

    return one_path(rng), one_path(np.random.default_rng(999))


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestPathLossSeries:
    def test_keeps_zero_loss_intervals(self, rng):
        sends = np.sort(rng.uniform(0, 30, 3000))
        m1 = PathMeasurements(sends, [15.0], rtt=0.035)
        m2 = PathMeasurements(sends, [15.2], rtt=0.035)
        rates_1, rates_2 = path_loss_series(m1, m2, 1.0)
        assert len(rates_1) >= 25  # unlike Algorithm 1's filtered series
        assert (rates_1 == 0).sum() > 20


class TestBinLossTomo:
    def test_common_bottleneck_blames_lc(self, rng):
        m1, m2 = measurements_with_common_bottleneck(rng)
        result = BinLossTomo(interval=1.0, loss_threshold=0.02).infer(m1, m2)
        assert result.x_c < result.x_1
        assert result.x_c < result.x_2

    def test_independent_loss_spares_lc(self, rng):
        m1, m2 = measurements_with_independent_loss(rng)
        result = BinLossTomo(interval=1.0, loss_threshold=0.02).infer(m1, m2)
        # With independent episodes, lc looks fine and l1/l2 absorb
        # the blame.
        assert result.x_c > result.x_1 or result.x_c > result.x_2

    def test_degenerate_no_data(self):
        m = PathMeasurements([0.0, 0.01], [0.0], rtt=0.03)
        result = BinLossTomo(interval=1.0, loss_threshold=0.05).infer(m, m)
        assert result.n_intervals == 0
        assert (result.x_c, result.x_1, result.x_2) == (0.0, 0.0, 0.0)

    def test_threshold_sensitivity_exists(self, rng):
        # The Figure-3 phenomenon: inferred lc performance is NOT
        # monotone/stable across thresholds near the true loss rate.
        m1, m2 = measurements_with_common_bottleneck(rng)
        values = [
            BinLossTomo(1.0, tau).infer(m1, m2).x_c
            for tau in (0.005, 0.02, 0.05, 0.1)
        ]
        assert max(values) - min(values) > 0.1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BinLossTomo(0.0, 0.05)
        with pytest.raises(ValueError):
            BinLossTomo(1.0, -0.1)


class TestBinLossTomoPlusPlus:
    def test_detects_common_bottleneck(self, rng):
        m1, m2 = measurements_with_common_bottleneck(rng)
        assert BinLossTomoPlusPlus(1.0, 0.02).detect(m1, m2)

    def test_rejects_independent_loss(self, rng):
        m1, m2 = measurements_with_independent_loss(rng)
        assert not BinLossTomoPlusPlus(1.0, 0.02).detect(m1, m2)


class TestBinLossTomoNoParams:
    def test_detects_common_bottleneck(self, rng):
        m1, m2 = measurements_with_common_bottleneck(rng)
        assert BinLossTomoNoParams().detect(m1, m2)

    def test_rejects_independent_loss(self, rng):
        m1, m2 = measurements_with_independent_loss(rng)
        assert not BinLossTomoNoParams().detect(m1, m2)

    def test_threshold_grid_respects_band(self, rng):
        m1, m2 = measurements_with_common_bottleneck(rng)
        alg = BinLossTomoNoParams()
        for tau in alg.candidate_thresholds(m1, m2, 1.0):
            rates_1, rates_2 = path_loss_series(m1, m2, 1.0)
            assert 0.1 <= np.mean(rates_1 <= tau) <= 0.9
            assert 0.1 <= np.mean(rates_2 <= tau) <= 0.9

    def test_gap_reporting(self, rng):
        m1, m2 = measurements_with_common_bottleneck(rng)
        detected, gaps_1, gaps_2 = BinLossTomoNoParams().detect(
            m1, m2, return_gaps=True
        )
        assert detected == (gaps_1.mean() > 0 and gaps_2.mean() > 0)
        assert len(gaps_1) == len(gaps_2)


def measurements_with_shared_trend(rng, phase_2=0.0, duration=90.0, rtt=0.035):
    """Smooth sinusoidal loss trend (V2's natural habitat)."""

    def one_path(phase):
        sends = np.sort(rng.uniform(0, duration, int(200 * duration)))
        p = np.clip(0.04 * (1.0 + 0.9 * np.sin(2 * np.pi * sends / 10.0 + phase)), 0, 1)
        lost = sends[rng.random(len(sends)) < p]
        return PathMeasurements(sends, lost, rtt)

    return one_path(0.0), one_path(phase_2)


class TestTrendLossTomo:
    def test_detects_shared_trend(self, rng):
        m1, m2 = measurements_with_shared_trend(rng)
        assert TrendLossTomo().detect(m1, m2)

    def test_rejects_opposite_trend(self, rng):
        m1, m2 = measurements_with_shared_trend(rng, phase_2=np.pi)
        assert not TrendLossTomo().detect(m1, m2)


class TestPacketPair:
    def test_detects_tightly_coupled_loss(self, rng):
        # Identical loss instants: the packet-level method's best case.
        sends = np.sort(rng.uniform(0, 60, 12000))
        lost = np.sort(rng.uniform(0, 60, 100))
        m1 = PathMeasurements(sends, lost, rtt=0.035)
        m2 = PathMeasurements(sends, lost + 0.001, rtt=0.035)
        assert PacketPairCorrelation().detect(m1, m2)

    def test_policer_style_alternating_loss_fails(self, rng):
        # At a policer, co-arriving packets rarely both drop; the
        # indicator series anticorrelate and detection fails (this is
        # why the paper abandoned the approach).
        sends = np.sort(rng.uniform(0, 60, 12000))
        episodes = np.arange(0.5, 60, 1.0)
        m1 = PathMeasurements(sends, episodes[::2], rtt=0.035)
        m2 = PathMeasurements(sends, episodes[1::2], rtt=0.035)
        assert not PacketPairCorrelation().detect(m1, m2)

    def test_too_short_measurement(self, rng):
        m = PathMeasurements([0.0, 0.01], [0.005], rtt=0.035)
        assert not PacketPairCorrelation().detect(m, m)
