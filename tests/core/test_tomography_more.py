"""Tomography numerical-identity tests (System 1 algebra)."""

import numpy as np
import pytest

from repro.core.tomography import BinLossTomo, path_loss_series
from repro.netsim.capture import PathMeasurements


@pytest.fixture
def rng():
    return np.random.default_rng(47)


def independent_binary_measurements(rng, p_lossy=0.3, duration=200.0):
    """Paths whose per-interval lossy status is i.i.d. Bernoulli."""
    out = []
    for _ in range(2):
        sends = np.arange(0, duration, 0.005)  # 200 pps, deterministic
        lost = []
        for start in np.arange(0, duration, 1.0):
            if rng.random() < p_lossy:
                # a dense loss burst in this interval
                lost.extend(start + rng.uniform(0, 1.0, 30))
        out.append(PathMeasurements(sends, np.sort(lost), 0.035))
    return out


class TestSystemOneAlgebra:
    def test_independent_paths_blame_their_own_links(self, rng):
        """With independent lossy intervals, y12 ~= y1*y2, so x_c ~= 1
        and x_i ~= y_i: all blame lands on the non-common links."""
        m1, m2 = independent_binary_measurements(rng)
        result = BinLossTomo(interval=1.0, loss_threshold=0.05).infer(m1, m2)
        assert result.x_c == pytest.approx(1.0, abs=0.12)
        assert result.x_1 < 0.9
        assert result.x_2 < 0.9

    def test_fully_shared_loss_blames_common_link(self, rng):
        """Identical loss timing: y1 = y2 = y12, so x_1 = x_2 = 1 and
        x_c = y1 -- all blame on the common link."""
        sends = np.arange(0, 200.0, 0.005)
        lost = []
        for start in np.arange(0, 200.0, 1.0):
            if rng.random() < 0.3:
                lost.extend(start + rng.uniform(0, 1.0, 30))
        lost = np.sort(lost)
        m1 = PathMeasurements(sends, lost, 0.035)
        m2 = PathMeasurements(sends, lost + 1e-4, 0.035)
        result = BinLossTomo(interval=1.0, loss_threshold=0.05).infer(m1, m2)
        assert result.x_1 == pytest.approx(1.0, abs=0.05)
        assert result.x_2 == pytest.approx(1.0, abs=0.05)
        assert result.x_c < 0.85

    def test_estimates_consistent_with_path_series(self, rng):
        m1, m2 = independent_binary_measurements(rng)
        rates_1, rates_2 = path_loss_series(m1, m2, 1.0)
        result = BinLossTomo(interval=1.0, loss_threshold=0.05).infer(m1, m2)
        y_1 = float(np.mean(rates_1 <= 0.05))
        y_2 = float(np.mean(rates_2 <= 0.05))
        # x_c * x_i must reconstruct y_i (System 1's first equations).
        assert result.x_c * result.x_1 == pytest.approx(y_1, abs=1e-9)
        assert result.x_c * result.x_2 == pytest.approx(y_2, abs=1e-9)
