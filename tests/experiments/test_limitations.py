"""The paper's stated limitations (Section 3.2), demonstrated.

WeHeY can only localize differentiation that (a) involves a common
bottleneck and (b) causes packet loss.  Deep shapers delay instead of
dropping; per-flow policers have no common bottleneck.  Both must make
the system answer "no evidence" -- which, per the paper, costs nothing
relative to plain WeHe.
"""

import pytest

from repro.experiments.runner import run_detection_experiment
from repro.experiments.scenarios import ScenarioConfig


class TestDeepShaperLimitation:
    @pytest.fixture(scope="class")
    def record(self):
        # A deep shaper: queue of 6x the burst absorbs arrival
        # fluctuations as delay instead of loss.
        config = ScenarioConfig(
            app="zoom",
            limiter="common",
            input_rate_factor=1.3,
            queue_factor=6.0,
            duration=30.0,
            seed=9,
        )
        return run_detection_experiment(config)

    def test_shaper_causes_little_loss(self, record):
        # Shallow-queue policers at the same load lose heavily; the
        # deep shaper sheds load as queueing delay instead.
        shallow = run_detection_experiment(
            ScenarioConfig(
                app="zoom",
                limiter="common",
                input_rate_factor=1.3,
                queue_factor=0.25,
                duration=30.0,
                seed=9,
            )
        )
        assert record.loss_rate_1 < shallow.loss_rate_1

    def test_low_loss_starves_algorithm_one(self, record):
        # With few loss events the correlation test has nothing to
        # chew on; either verdict must come with scant intervals, and
        # WeHe itself would not flag the low-loss replay.
        if record.loss_rate_1 < 0.003:
            assert not record.differentiation_visible
