"""Negative control: a neutral network must never be blamed.

On a path with no differentiation device at all, WeHe's confirmation
step must fail (original and bit-inverted replays perform alike) and
WeHeY must output "no evidence" -- regardless of background noise.
"""

import numpy as np
import pytest

from repro.core.localizer import LocalizationOutcome, WeHeYLocalizer
from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.wehe.apps import make_trace
from repro.wehe.traces import bit_invert


@pytest.fixture(scope="module")
def neutral_report():
    config = ScenarioConfig(app="zoom", limiter=None, duration=25.0, seed=21)
    service = NetsimReplayService(config)
    trace = make_trace("zoom", 25.0, service._trace_rng)
    tdiff = np.random.default_rng(4).normal(0.0, 0.08, 80)
    localizer = WeHeYLocalizer(np.random.default_rng(2), tdiff)
    return localizer.localize(service, trace, bit_invert(trace))


class TestNeutralNetwork:
    def test_no_evidence(self, neutral_report):
        assert neutral_report.outcome is LocalizationOutcome.NO_EVIDENCE

    def test_confirmation_gate_fired(self, neutral_report):
        # Original and inverted replays perform alike on a neutral
        # path, so the pipeline stops at confirmation.
        assert not (
            neutral_report.confirmation_1.differentiated
            and neutral_report.confirmation_2.differentiated
        )
        assert "not confirmed" in neutral_report.reason

    def test_no_detectors_ran(self, neutral_report):
        assert neutral_report.throughput_result is None
        assert neutral_report.loss_result is None
