"""Integration tests for the per-flow limiter scenario (Section 7)."""

import pytest

from repro.experiments.runner import NetsimReplayService, run_detection_experiment
from repro.experiments.scenarios import ScenarioConfig
from repro.wehe.apps import make_trace


@pytest.fixture(scope="module")
def records():
    """One unmerged and one merged per-flow experiment (shared setup)."""
    config = ScenarioConfig(app="zoom", limiter="perflow", duration=30.0, seed=2)
    unmerged = run_detection_experiment(config, merge_flows=False)
    merged = run_detection_experiment(config, merge_flows=True)
    return unmerged, merged


class TestPerFlowScenario:
    def test_unmerged_replays_use_separate_buckets(self, records):
        unmerged, _ = records
        # Each flow gets its own policer sized below its demand: both
        # lose, but loss trends are per-flow and Alg. 1 finds nothing.
        assert unmerged.loss_rate_1 > 0.02
        assert unmerged.loss_rate_2 > 0.02
        assert not unmerged.verdicts["loss_trend"]

    def test_merged_replays_share_one_bucket(self, records):
        _, merged = records
        # Two flows in one bucket sized for one: loss roughly doubles.
        assert merged.loss_rate_1 > records[0].loss_rate_1

    def test_merged_flow_ids_identical(self):
        config = ScenarioConfig(app="zoom", limiter="perflow", duration=10.0, seed=3)
        service = NetsimReplayService(config, merge_flows=True)
        trace = make_trace("zoom", 10.0, service._trace_rng)
        result = service.simultaneous_replay(trace)
        # Both paths lost packets to the *same* bucket; the qdisc saw
        # exactly one throttled flow.
        # (Indirect check: with separate buckets each flow would lose
        # ~the same modest amount; sharing one doubles pressure.)
        assert result.measurements_1.packets_lost > 0
        assert result.measurements_2.packets_lost > 0

    def test_perflow_rate_is_per_flow(self):
        config = ScenarioConfig(app="zoom", limiter="perflow")
        assert config.limiter_rate_bps == pytest.approx(
            config.replay_rate_bps / config.input_rate_factor
        )
