"""Experiment-report tests."""

import json

from repro.experiments.report import ExperimentSummary
from repro.experiments.runner import DetectionExperimentRecord
from repro.experiments.scenarios import ScenarioConfig

def record(detected=True, visible=True, retx=0.05):
    return DetectionExperimentRecord(
        config=ScenarioConfig(app="zoom", seed=1),
        verdicts={"loss_trend": detected},
        retx_rate=retx,
        queuing_delay=0.005,
        loss_rate_1=0.04,
        loss_rate_2=0.03,
        differentiation_visible=visible,
    )


class TestExperimentSummary:
    def test_detection_rate_over_visible_only(self):
        summary = ExperimentSummary("t")
        summary.add(record(detected=True))
        summary.add(record(detected=False))
        summary.add(record(detected=True, visible=False))  # excluded
        assert summary.detection_rate() == 0.5
        assert len(summary) == 3

    def test_empty_summary(self):
        summary = ExperimentSummary("t")
        assert summary.detection_rate() == 0.0
        assert summary.mean_retx_rate() == 0.0

    def test_json_round_trip(self, tmp_path):
        summary = ExperimentSummary("t")
        summary.add(record())
        path = tmp_path / "summary.json"
        summary.to_json(path)
        data = json.loads(path.read_text())
        assert data["name"] == "t"
        assert data["n"] == 1
        assert data["records"][0]["verdicts"]["loss_trend"] is True
        assert data["records"][0]["config"]["app"] == "zoom"

    def test_text_format(self):
        summary = ExperimentSummary("fp-sweep")
        summary.add(record(detected=False, retx=0.1))
        text = summary.format_text()
        assert "fp-sweep" in text
        assert "loss_trend" in text
        assert "0.100" in text
