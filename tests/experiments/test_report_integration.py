"""Report module over real experiment records."""

import json

import pytest

from repro.experiments.report import ExperimentSummary
from repro.experiments.runner import run_detection_experiment
from repro.experiments.scenarios import ScenarioConfig


@pytest.fixture(scope="module")
def summary():
    result = ExperimentSummary("integration")
    for seed in (0, 1):
        record = run_detection_experiment(
            ScenarioConfig(app="zoom", limiter="common", duration=15.0, seed=seed)
        )
        result.add(record)
    return result


class TestReportIntegration:
    def test_summary_counts(self, summary):
        assert len(summary) == 2

    def test_json_contains_full_config(self, summary):
        data = json.loads(summary.to_json())
        config = data["records"][0]["config"]
        assert config["app"] == "zoom"
        assert config["limiter"] == "common"
        assert "input_rate_factor" in config

    def test_text_summary_renders(self, summary):
        text = summary.format_text()
        assert "integration: 2 experiments" in text
