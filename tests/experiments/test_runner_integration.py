"""Integration tests: scenarios -> simulator -> detectors.

These run full (but short) simulations; they use reduced durations to
stay fast while still exercising every moving part together.
"""

import pytest

from repro.core.loss_correlation import LossTrendCorrelation
from repro.experiments.metrics import RateCounter, SweepTable
from repro.experiments.runner import (
    NetsimReplayService,
    run_detection_experiment,
)
from repro.experiments.scenarios import ScenarioConfig
from repro.wehe.apps import make_trace

@pytest.fixture(scope="module")
def udp_common_record():
    config = ScenarioConfig(app="zoom", limiter="common", duration=30.0, seed=12)
    return run_detection_experiment(config)


class TestDetectionExperiment:
    def test_udp_common_bottleneck_detected(self, udp_common_record):
        assert udp_common_record.verdicts["loss_trend"]
        assert udp_common_record.differentiation_visible

    def test_record_carries_health_metrics(self, udp_common_record):
        assert udp_common_record.loss_rate_1 > 0
        assert udp_common_record.loss_rate_2 > 0

    def test_multiple_detectors(self):
        from repro.core.tomography import BinLossTomoNoParams

        config = ScenarioConfig(app="zoom", limiter="common", duration=30.0, seed=13)
        record = run_detection_experiment(
            config,
            detectors={
                "loss_trend": LossTrendCorrelation(),
                "tomography": BinLossTomoNoParams(
                    rtt_multiples=(10, 20, 30, 40, 50)
                ),
            },
        )
        assert set(record.verdicts) == {"loss_trend", "tomography"}

    def test_no_limiter_means_little_loss(self):
        config = ScenarioConfig(app="zoom", limiter=None, duration=20.0, seed=14)
        record = run_detection_experiment(config)
        assert record.loss_rate_1 < 0.01
        assert not record.differentiation_visible


class TestReplayService:
    def test_single_replay_produces_samples(self):
        config = ScenarioConfig(app="zoom", limiter="common", duration=20.0, seed=15)
        service = NetsimReplayService(config)
        trace = make_trace("zoom", 20.0, service._trace_rng)
        samples = service.single_replay(trace)
        assert len(samples) == 100
        assert samples.mean() > 0

    def test_original_throttled_below_inverted(self):
        from repro.wehe.traces import bit_invert

        config = ScenarioConfig(app="zoom", limiter="common", duration=20.0, seed=16)
        service = NetsimReplayService(config)
        trace = make_trace("zoom", 20.0, service._trace_rng)
        original = service.simultaneous_replay(trace)
        inverted = service.simultaneous_replay(bit_invert(trace))
        # The bit-inverted replay bypasses the limiter and must lose
        # far fewer packets.
        assert inverted.measurements_1.loss_rate < original.measurements_1.loss_rate

    def test_same_seed_same_throughput(self):
        def run():
            config = ScenarioConfig(
                app="zoom", limiter="common", duration=15.0, seed=17
            )
            service = NetsimReplayService(config)
            trace = make_trace("zoom", 15.0, service._trace_rng)
            return service.simultaneous_replay(trace).mean_throughput_1

        assert run() == run()


class TestMetrics:
    def test_rate_counter(self):
        counter = RateCounter()
        counter.record(True, True)
        counter.record(True, False)
        counter.record(False, True)
        counter.record(False, False)
        assert counter.fn_rate == 0.5
        assert counter.fp_rate == 0.5
        assert "FN 1/2" in str(counter)

    def test_empty_counter(self):
        counter = RateCounter()
        assert counter.fn_rate == 0.0
        assert counter.fp_rate == 0.0

    def test_sweep_table(self):
        table = SweepTable("t")
        table.counter("a").record(True, True)
        table.counter("b").record(True, False)
        rows = dict(table.rows())
        assert rows["a"].fn_rate == 0.0
        assert rows["b"].fn_rate == 1.0
        assert "== t ==" in table.format()
