"""Scenario-configuration tests."""

import pytest

from repro.experiments.scenarios import (
    BACKGROUND_SHARES,
    CONGESTION_FACTORS,
    INPUT_RATE_FACTORS,
    QUEUE_FACTORS,
    RTT2_SWEEP,
    ScenarioConfig,
    severity_grid,
)


class TestScenarioConfig:
    def test_defaults_match_table2_bold(self):
        config = ScenarioConfig()
        assert config.input_rate_factor == INPUT_RATE_FACTORS[0] == 1.5
        assert config.queue_factor == QUEUE_FACTORS[0] == 0.5
        assert config.background_share == BACKGROUND_SHARES[0] == 0.5
        assert config.congestion_factor == CONGESTION_FACTORS[0] == 0.2
        assert config.rtt_1 == config.rtt_2 == 0.035

    def test_limiter_rate_scales_inversely_with_factor(self):
        soft = ScenarioConfig(input_rate_factor=1.3)
        hard = ScenarioConfig(input_rate_factor=2.5)
        assert hard.limiter_rate_bps < soft.limiter_rate_bps

    def test_noncommon_limiter_sees_half_load(self):
        common = ScenarioConfig(limiter="common")
        split = ScenarioConfig(limiter="noncommon")
        assert split.limiter_rate_bps < common.limiter_rate_bps

    def test_congestion_shrinks_noncommon_bandwidth(self):
        idle = ScenarioConfig(congestion_factor=0.2)
        jammed = ScenarioConfig(congestion_factor=1.15)
        assert jammed.noncommon_bandwidth_bps < idle.noncommon_bandwidth_bps

    def test_protocol_derived_from_app(self):
        assert ScenarioConfig(app="netflix").protocol == "tcp"
        assert ScenarioConfig(app="zoom").protocol == "udp"

    def test_with_functional_update(self):
        base = ScenarioConfig()
        changed = base.with_(rtt_2=0.120)
        assert changed.rtt_2 == 0.120
        assert base.rtt_2 == 0.035

    def test_rejects_unknown_app(self):
        with pytest.raises(ValueError):
            ScenarioConfig(app="friendster")

    def test_rejects_weak_factor_with_limiter(self):
        with pytest.raises(ValueError):
            ScenarioConfig(input_rate_factor=0.9)

    def test_rtt_sweep_matches_paper(self):
        assert RTT2_SWEEP == (0.010, 0.015, 0.025, 0.035, 0.060, 0.120)


class TestSeverityGrid:
    def test_grid_size(self):
        cells = list(severity_grid("zoom", seeds=range(2)))
        assert len(cells) == len(INPUT_RATE_FACTORS) * len(QUEUE_FACTORS) * 2

    def test_grid_covers_all_combinations(self):
        cells = list(severity_grid("netflix", seeds=[0]))
        combos = {(c.input_rate_factor, c.queue_factor) for c in cells}
        assert len(combos) == len(INPUT_RATE_FACTORS) * len(QUEUE_FACTORS)
