"""Simulator-derived T_diff tests."""

import numpy as np
import pytest

from repro.api import SweepRequest, run_sweep


def simulate_tdiff(n_pairs, **kwargs):
    return run_sweep(SweepRequest.tdiff(n_pairs, **kwargs)).results


@pytest.fixture(scope="module")
def values():
    return simulate_tdiff(n_pairs=4, duration=8.0)


class TestSimulateTdiff:
    def test_produces_requested_pairs(self, values):
        assert len(values) == 4

    def test_values_are_relative_differences(self, values):
        assert np.all(np.abs(values) <= 1.0)

    def test_variation_is_small_on_unthrottled_path(self, values):
        # Back-to-back replays on a clean path differ by a modest
        # fraction -- that is the whole point of T_diff.
        assert np.median(np.abs(values)) < 0.5

    def test_deterministic_given_base_seed(self):
        a = simulate_tdiff(n_pairs=1, duration=5.0, base_seed=42)
        b = simulate_tdiff(n_pairs=1, duration=5.0, base_seed=42)
        np.testing.assert_allclose(a, b)
