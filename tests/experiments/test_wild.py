"""Wild-ISP model tests (Section 5)."""

from repro.experiments.wild import (
    WILD_ISPS,
    DelayedTriggerClassifier,
    WildReplayService,
    default_tdiff,
    run_wild_test,
)
from repro.netsim.packet import DATA, Packet
from repro.wehe.apps import make_trace


class TestDelayedTriggerClassifier:
    def _packet(self, size=1500, dscp=1):
        return Packet("f", DATA, 0, size, dscp=dscp)

    def test_does_not_throttle_before_trigger(self):
        classifier = DelayedTriggerClassifier(10_000)
        assert not classifier(self._packet(4000))
        assert not classifier(self._packet(4000))

    def test_throttles_after_trigger(self):
        classifier = DelayedTriggerClassifier(10_000)
        for _ in range(3):
            classifier(self._packet(4000))
        assert classifier(self._packet(100))
        assert classifier.tripped

    def test_unmarked_traffic_never_counted(self):
        classifier = DelayedTriggerClassifier(1000)
        for _ in range(10):
            assert not classifier(self._packet(4000, dscp=0))
        assert not classifier.tripped

    def test_zero_trigger_is_always_on(self):
        classifier = DelayedTriggerClassifier(0)
        assert classifier(self._packet())


class TestWildService:
    def test_isp5_simultaneous_trips_earlier(self):
        """The Figure-4 mechanism: two concurrent streams reach the
        data-volume criterion roughly twice as fast."""
        isp = WILD_ISPS["ISP5"]
        service = WildReplayService(isp, "netflix", seed=5, duration=40.0)
        trace = make_trace("netflix", 40.0, service._trace_rng)
        x = service.single_replay(trace)
        sim = service.simultaneous_replay(trace)
        # Post-trigger the single replay still has untripped early
        # samples; compare early-window means.
        early_single = x[:20].mean()
        early_sim = (sim.samples_1[:20] + sim.samples_2[:20]).mean()
        late_single = x[-20:].mean()
        assert early_single > late_single  # throttling engaged eventually
        assert early_sim < 2.2 * early_single  # sim trips earlier, so less headroom

    def test_basic_test_localizes(self):
        report = run_wild_test("ISP3", app="youtube", seed=2)
        assert report.localized

    def test_sanity_check_does_not_localize(self):
        report = run_wild_test("ISP2", app="netflix", seed=2, sanity_check=True)
        assert not report.localized

    def test_default_tdiff_cached(self):
        a = default_tdiff()
        b = default_tdiff()
        assert a is b
        assert len(a) > 20
