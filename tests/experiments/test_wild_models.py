"""Wild ISP model-catalogue sanity tests."""

import pytest

from repro.experiments.wild import WILD_ISPS


class TestIspCatalogue:
    def test_five_isps_modelled(self):
        assert len(WILD_ISPS) == 5
        assert set(WILD_ISPS) == {"ISP1", "ISP2", "ISP3", "ISP4", "ISP5"}

    def test_only_isp5_has_delayed_trigger(self):
        for name, model in WILD_ISPS.items():
            if name == "ISP5":
                assert model.trigger_bytes is not None
                assert model.trigger_jitter > 0
            else:
                assert model.trigger_bytes is None

    def test_throttle_rates_are_video_tier(self):
        # "DVD quality (480p)"-style plans: single-digit Mb/s.
        for model in WILD_ISPS.values():
            assert 1e6 <= model.throttle_rate_bps <= 10e6

    def test_rtts_are_cellular(self):
        for model in WILD_ISPS.values():
            assert 0.02 <= model.rtt <= 0.2

    def test_queue_factors_span_policing_and_shaping(self):
        factors = {model.queue_factor for model in WILD_ISPS.values()}
        assert min(factors) <= 0.25  # policer-like
        assert max(factors) >= 1.0  # shaper-like

    def test_model_is_frozen(self):
        with pytest.raises(AttributeError):
            WILD_ISPS["ISP1"].rtt = 0.5
