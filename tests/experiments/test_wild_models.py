"""Wild ISP model-catalogue sanity tests."""

import pytest

from repro.experiments.wild import WILD_ISPS, ZOO_ISPS, isp_model


class TestIspCatalogue:
    def test_five_isps_modelled(self):
        assert len(WILD_ISPS) == 5
        assert set(WILD_ISPS) == {"ISP1", "ISP2", "ISP3", "ISP4", "ISP5"}

    def test_only_isp5_has_delayed_trigger(self):
        for name, model in WILD_ISPS.items():
            if name == "ISP5":
                assert model.trigger_bytes is not None
                assert model.trigger_jitter > 0
            else:
                assert model.trigger_bytes is None

    def test_throttle_rates_are_video_tier(self):
        # "DVD quality (480p)"-style plans: single-digit Mb/s.
        for model in WILD_ISPS.values():
            assert 1e6 <= model.throttle_rate_bps <= 10e6

    def test_rtts_are_cellular(self):
        for model in WILD_ISPS.values():
            assert 0.02 <= model.rtt <= 0.2

    def test_queue_factors_span_policing_and_shaping(self):
        factors = {model.queue_factor for model in WILD_ISPS.values()}
        assert min(factors) <= 0.25  # policer-like
        assert max(factors) >= 1.0  # shaper-like

    def test_model_is_frozen(self):
        with pytest.raises(AttributeError):
            WILD_ISPS["ISP1"].rtt = 0.5

    def test_table1_isps_keep_the_paper_mechanism(self):
        # The paper reproduction sweeps must stay on the TBF policer.
        for model in WILD_ISPS.values():
            assert model.shaper is None
            assert model.shaper_params == ()


class TestZooCatalogue:
    def test_zoo_is_disjoint_from_table1(self):
        assert not set(ZOO_ISPS) & set(WILD_ISPS)

    def test_every_zoo_shaper_is_registered(self):
        from repro.netsim.qdisc import qdisc_spec

        for model in ZOO_ISPS.values():
            assert model.shaper is not None
            spec = qdisc_spec(model.shaper)  # raises if unregistered
            assert spec.packet is not None

    def test_zoo_covers_aqm_two_rate_and_conditional(self):
        shapers = {model.shaper for model in ZOO_ISPS.values()}
        assert {"red", "codel", "pie", "ecn", "dual_tbf", "conditional"} <= shapers

    def test_zoo_params_build_devices(self):
        from repro.netsim.qdisc import make_qdisc, qdisc_spec

        for model in ZOO_ISPS.values():
            params = dict(model.shaper_params)
            if qdisc_spec(model.shaper).seeded:
                params["seed"] = 0
            device = make_qdisc(
                model.shaper, rate_bps=model.throttle_rate_bps, **params
            )
            assert len(device) == 0

    def test_isp_model_looks_up_both_catalogues(self):
        assert isp_model("ISP1") is WILD_ISPS["ISP1"]
        assert isp_model("ZOO-RED") is ZOO_ISPS["ZOO-RED"]
        with pytest.raises(KeyError, match="unknown ISP"):
            isp_model("ZOO-FQ")


class TestZooService:
    def test_zoo_isp_throttles_target_app(self):
        # A zoo ISP's replay service must actually shape: the original
        # replay runs well below the line rate while the control (bit-
        # inverted) replay escapes the classifier.
        from repro.experiments.wild import WildReplayService
        from repro.wehe.apps import make_trace
        from repro.wehe.traces import bit_invert

        service = WildReplayService(isp_model("ZOO-RED"), "netflix", seed=0)
        trace = make_trace("netflix", service.duration, service._trace_rng)
        service.single_replay(trace)
        original = service.last_single_handle.mean_throughput()
        service.single_replay(bit_invert(trace))
        control = service.last_single_handle.mean_throughput()
        assert original < 0.8 * control
