"""CLI surface of the fault-injection subsystem."""

import pytest

from repro.cli import build_parser, main


class TestParserFlags:
    def test_localize_fault_defaults(self):
        args = build_parser().parse_args(["localize"])
        assert args.max_retries == 2
        assert args.fault_profile == "none"

    def test_localize_accepts_fault_spec(self):
        args = build_parser().parse_args(
            ["localize", "--fault-profile", "replay_abort=0.5", "--max-retries", "4"]
        )
        assert args.fault_profile == "replay_abort=0.5"
        assert args.max_retries == 4


class TestLocalizeWithFaults:
    def test_all_attempts_aborted_fails_cleanly(self, capsys):
        code = main(
            ["localize", "--app", "zoom", "--duration", "20", "--seed", "1",
             "--fault-profile", "replay_abort=1.0", "--max-retries", "1"]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "replay aborted" in out
        assert "faults" in out
        assert "failed" in out

    def test_transient_abort_is_retried(self, capsys):
        code = main(
            ["localize", "--app", "zoom", "--limiter", "common",
             "--duration", "20", "--seed", "3",
             "--fault-profile", "replay_abort=1.0:1", "--max-retries", "2"]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)  # the retried localization ran to a verdict
        assert "attempt 1/3" in out
        assert "outcome" in out

    def test_bad_fault_spec_errors(self):
        with pytest.raises(ValueError):
            main(
                ["localize", "--duration", "5",
                 "--fault-profile", "solar_flare=1.0"]
            )
