"""The fault matrix: every fault type x injection point, coordinated.

Acceptance criteria for the resilience subsystem:

- the coordinator always returns a structured ``CoordinatedReport``,
  never an unhandled exception, whatever faults are injected;
- retries succeed when a later attempt or candidate server pair is
  healthy;
- two runs with the same seed and fault profile produce identical
  statuses.
"""

import itertools
import warnings

import numpy as np
import pytest

from repro.core.coordinator import (
    CoordinatedReport,
    CoordinationStatus,
    WeHeYCoordinator,
    replay_entropy,
)
from repro.experiments.scenarios import ScenarioConfig
from repro.faults import FaultInjector, FaultProfile, FaultSite, RetryPolicy
from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.internet import SyntheticInternet
from repro.mlab.topology_construction import TopologyConstructor
from repro.mlab.traceroute import collect_month
from repro.mlab.verification import TopologyVerifier

#: Short replays keep the failure-path simulations cheap; the fault
#: machinery is duration-independent.
DURATION = 8.0


@pytest.fixture(scope="module")
def records():
    """One month of traceroutes over a frozen synthetic internet."""
    rng = np.random.default_rng(41)
    internet = SyntheticInternet(rng, icmp_block_fraction=0.0, alias_fraction=0.0)
    annotations = AnnotationDatabase(internet)
    month = collect_month(internet, rng, tests_per_client=len(internet.servers))
    return internet, annotations, month


def fresh_coordinator(records, profile_spec, seed=1, policy=None, route_change=0.0):
    """A coordinator over a *fresh* database (runs mutate the database)."""
    internet, annotations, month = records
    database = TopologyConstructor(annotations).build(month)
    rng = np.random.default_rng(seed)
    scenario = ScenarioConfig(app="zoom", limiter="common", duration=DURATION)
    verifier = TopologyVerifier(
        internet, annotations, rng, route_change_probability=route_change
    )
    tdiff = np.random.default_rng(9).normal(0.0, 0.08, 80)
    injector = FaultInjector(FaultProfile.parse(profile_spec), seed=seed)
    coordinator = WeHeYCoordinator(
        internet,
        database,
        verifier,
        scenario,
        rng,
        tdiff,
        retry_policy=policy or RetryPolicy(max_attempts=2, base_backoff_s=0.0),
        fault_injector=injector,
    )
    return coordinator, database


def target_client(records, min_entries=2):
    internet, annotations, month = records
    database = TopologyConstructor(annotations).build(month)
    for client in internet.clients:
        if len(database.lookup(client.ip, client.asn)) >= min_entries:
            return client
    pytest.fail("fixture internet has no client with enough topologies")


#: fault spec (always fires) -> expected terminal status.
FAULT_MATRIX = {
    "replay_abort": CoordinationStatus.REPLAY_FAILED,
    "traceroute_timeout": CoordinationStatus.TRACEROUTE_FAILED,
    "stale_topology": CoordinationStatus.NO_TOPOLOGY,
    "truncated_samples": CoordinationStatus.INVALID_MEASUREMENTS,
    "corrupt_loss": CoordinationStatus.INVALID_MEASUREMENTS,
}


class TestFaultMatrix:
    @pytest.mark.parametrize("spec,expected", sorted(FAULT_MATRIX.items()))
    def test_every_fault_yields_a_structured_status(
        self, records, spec, expected
    ):
        client = target_client(records)
        policy = RetryPolicy(max_attempts=1)
        coordinator, _ = fresh_coordinator(records, spec, policy=policy)
        report = coordinator.run_test(client.name, app="zoom")
        assert isinstance(report, CoordinatedReport)
        assert report.status is expected
        assert not report.localized
        assert report.localization is None

    def test_empty_traceroutes_degrade_but_complete(self, records):
        """Empty-hop traceroutes fall back to the default RTT and the
        test still runs to a structured completion."""
        client = target_client(records)
        coordinator, _ = fresh_coordinator(records, "traceroute_empty")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = coordinator.run_test(client.name, app="zoom")
        assert report.status is CoordinationStatus.COMPLETED
        assert coordinator.telemetry["traceroute_fallback_rtt"] == 2

    def test_same_seed_and_profile_same_statuses(self, records):
        client = target_client(records)
        specs = ["replay_abort=0.6", "traceroute_timeout=0.7,stale_topology=0.3"]

        def statuses(spec):
            coordinator, _ = fresh_coordinator(
                records, spec, seed=5,
                policy=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
            )
            report = coordinator.run_test(client.name, app="zoom")
            return report.status, tuple(a.failure for a in report.attempts)

        for spec in specs:
            assert statuses(spec) == statuses(spec)

    def test_attempt_log_records_backoff_and_pairs(self, records):
        client = target_client(records)
        policy = RetryPolicy(
            max_attempts=3, base_backoff_s=0.5, backoff_factor=2.0
        )
        coordinator, _ = fresh_coordinator(records, "replay_abort", policy=policy)
        report = coordinator.run_test(client.name, app="zoom")
        assert report.status is CoordinationStatus.REPLAY_FAILED
        assert report.n_attempts == 3
        # Full jitter: each delay is uniform in [0, exponential delay],
        # and the final (abandoning) attempt charges no backoff.
        backoffs = [a.backoff_s for a in report.attempts]
        assert 0.0 <= backoffs[0] <= 0.5
        assert 0.0 <= backoffs[1] <= 1.0
        assert backoffs[2] == 0.0
        assert all(a.server_pair for a in report.attempts)
        # Attempts rotate over candidate pairs, not entries[0] forever.
        assert len({a.server_pair for a in report.attempts}) > 1

    def test_backoff_jitter_is_reproducible(self, records):
        """Same seed + profile -> the same jittered backoff schedule."""
        client = target_client(records)

        def backoffs():
            coordinator, _ = fresh_coordinator(
                records, "replay_abort", seed=7,
                policy=RetryPolicy(
                    max_attempts=3, base_backoff_s=0.5, backoff_factor=2.0
                ),
            )
            report = coordinator.run_test(client.name, app="zoom")
            return [a.backoff_s for a in report.attempts]

        first = backoffs()
        assert backoffs() == first
        assert any(b > 0 for b in first)


class TestRetryRecovery:
    def test_transient_abort_recovers(self, records):
        """replay_abort with max_fires=2: the third attempt completes."""
        client = target_client(records)
        coordinator, _ = fresh_coordinator(
            records, "replay_abort=1.0:2",
            policy=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
        )
        report = coordinator.run_test(client.name, app="zoom")
        assert report.status is CoordinationStatus.COMPLETED
        assert report.n_attempts == 3
        assert [a.failure for a in report.attempts] == [
            CoordinationStatus.REPLAY_FAILED,
            CoordinationStatus.REPLAY_FAILED,
            None,
        ]

    def test_stale_first_candidate_falls_through_to_healthy_pair(self, records):
        """The first candidate entry is stale; the coordinator skips it
        (invalidating it) and completes on the next pair."""
        client = target_client(records, min_entries=2)
        coordinator, database = fresh_coordinator(
            records, "stale_topology=1.0:1",
            policy=RetryPolicy(max_attempts=2, base_backoff_s=0.0),
        )
        first_pair = database.lookup(client.ip, client.asn)[0].server_pair
        before = len(database.lookup(client.ip, client.asn))
        report = coordinator.run_test(client.name, app="zoom")
        assert report.status is CoordinationStatus.COMPLETED
        assert report.server_pair != first_pair
        assert len(database.lookup(client.ip, client.asn)) == before - 1
        assert coordinator.telemetry["stale_topology_entries"] == 1

    def test_mixed_failures_exhaust_retries(self, records):
        """Different failure kinds across attempts -> RETRIES_EXHAUSTED."""
        client = target_client(records)
        coordinator, _ = fresh_coordinator(
            records, "traceroute_timeout=1.0:1,replay_abort=1.0",
            policy=RetryPolicy(max_attempts=2, base_backoff_s=0.0),
        )
        report = coordinator.run_test(client.name, app="zoom")
        assert report.status is CoordinationStatus.RETRIES_EXHAUSTED
        assert [a.failure for a in report.attempts] == [
            CoordinationStatus.TRACEROUTE_FAILED,
            CoordinationStatus.REPLAY_FAILED,
        ]

    def test_time_budget_cuts_off_attempts(self, records):
        client = target_client(records)
        ticks = itertools.count(0, 100.0)
        coordinator, _ = fresh_coordinator(
            records, "replay_abort",
            policy=RetryPolicy(max_attempts=5, max_total_time_s=50.0),
        )
        coordinator._clock = ticks.__next__
        report = coordinator.run_test(client.name, app="zoom")
        assert report.status is CoordinationStatus.RETRIES_EXHAUSTED
        assert report.n_attempts == 0


class TestDiscardPath:
    def test_route_churn_discards_and_invalidates(self, records):
        """Section 3.4 step 4 stays terminal: measurements discarded,
        entry invalidated through the database API."""
        client = target_client(records)
        coordinator, database = fresh_coordinator(
            records, "none", route_change=1.0,
            policy=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
        )
        before = len(database.lookup(client.ip, client.asn))
        report = coordinator.run_test(client.name, app="zoom")
        assert report.status is CoordinationStatus.DISCARDED_TOPOLOGY_CHANGED
        assert report.localization is None
        assert len(database.lookup(client.ip, client.asn)) == before - 1
        assert report.n_attempts == 1  # a discard ends the test, no retry


class TestProperties:
    def test_no_fault_profile_escapes_as_exception(self, records):
        """Property-style sweep: random profiles over all sites never
        crash the coordinator, and same-seed reruns agree."""
        client = target_client(records)
        sites = [
            FaultSite.REPLAY_ABORT,
            FaultSite.TRACEROUTE_TIMEOUT,
            FaultSite.TRACEROUTE_EMPTY,
            FaultSite.STALE_TOPOLOGY,
            FaultSite.TRUNCATED_SAMPLES,
            FaultSite.CORRUPT_LOSS,
        ]
        meta_rng = np.random.default_rng(2024)
        for case in range(6):
            probabilities = meta_rng.uniform(0.4, 1.0, len(sites))
            spec = ",".join(
                f"{site}={p:.3f}" for site, p in zip(sites, probabilities)
            )
            coordinator, _ = fresh_coordinator(
                records, spec, seed=case,
                policy=RetryPolicy(max_attempts=2, base_backoff_s=0.0),
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                report = coordinator.run_test(client.name, app="zoom")
            assert isinstance(report, CoordinatedReport)
            assert isinstance(report.status, CoordinationStatus)

    def test_replay_entropy_is_interpreter_stable(self):
        import zlib

        digest = zlib.crc32(b"isp-0-client0")
        assert replay_entropy("isp-0-client0") == digest % (2**31)
        assert replay_entropy("isp-0-client0", attempt_index=1) == (
            (digest + 1) % (2**31)
        )
        assert 0 <= replay_entropy("any") < 2**31
