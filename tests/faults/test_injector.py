"""Unit tests for the fault-injection core: profiles, injector, retry."""

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultProfile,
    FaultRule,
    FaultSite,
    RetryBudget,
    RetryPolicy,
)
from repro.faults.injector import MAX_TRUNCATED_SAMPLES
from repro.faults.profile import ALL_SITES


class TestFaultProfile:
    def test_named_profiles_parse(self):
        assert FaultProfile.parse("none").rules == ()
        assert FaultProfile.parse("flaky").name == "flaky"
        chaos = FaultProfile.parse("chaos")
        assert {rule.site for rule in chaos.rules} == set(ALL_SITES)

    def test_spec_parsing(self):
        profile = FaultProfile.parse("replay_abort=0.5,traceroute_timeout=1.0:2")
        abort = profile.rule_for(FaultSite.REPLAY_ABORT)
        timeout = profile.rule_for(FaultSite.TRACEROUTE_TIMEOUT)
        assert abort.probability == 0.5 and abort.max_fires is None
        assert timeout.probability == 1.0 and timeout.max_fires == 2

    def test_bare_site_means_always(self):
        rule = FaultProfile.parse("stale_topology").rule_for(FaultSite.STALE_TOPOLOGY)
        assert rule.probability == 1.0

    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError):
            FaultProfile.parse("bgp_hijack=0.5")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultRule(FaultSite.REPLAY_ABORT, probability=1.5)

    def test_rejects_malformed_spec(self):
        with pytest.raises(ValueError):
            FaultProfile.parse("replay_abort=often")

    def test_rejects_duplicate_sites(self):
        with pytest.raises(ValueError):
            FaultProfile.parse("replay_abort=0.1,replay_abort=0.9")


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            injector = FaultInjector(FaultProfile.parse("replay_abort=0.4"), seed)
            return [injector.fires(FaultSite.REPLAY_ABORT) for _ in range(32)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_sites_draw_from_independent_streams(self):
        """Consulting one site must not shift another site's schedule."""
        profile = FaultProfile.parse("replay_abort=0.4,traceroute_timeout=0.4")
        solo = FaultInjector(profile, seed=5)
        interleaved = FaultInjector(profile, seed=5)
        expected = [solo.fires(FaultSite.REPLAY_ABORT) for _ in range(16)]
        got = []
        for _ in range(16):
            interleaved.fires(FaultSite.TRACEROUTE_TIMEOUT)
            got.append(interleaved.fires(FaultSite.REPLAY_ABORT))
        assert got == expected

    def test_unruled_site_never_fires_and_draws_nothing(self):
        injector = FaultInjector(FaultProfile.parse("replay_abort=1.0"), seed=0)
        assert not injector.fires(FaultSite.CORRUPT_LOSS)
        assert injector.draws_by_site[FaultSite.CORRUPT_LOSS] == 0

    def test_max_fires_caps_the_fault(self):
        injector = FaultInjector(FaultProfile.parse("replay_abort=1.0:2"), seed=0)
        fires = [injector.fires(FaultSite.REPLAY_ABORT) for _ in range(5)]
        assert fires == [True, True, False, False, False]
        assert injector.fires_by_site[FaultSite.REPLAY_ABORT] == 2
        assert injector.draws_by_site[FaultSite.REPLAY_ABORT] == 5

    def test_truncation_leaves_too_few_samples(self):
        injector = FaultInjector(FaultProfile.parse("truncated_samples"), seed=3)
        truncated = injector.truncate_samples(np.ones(100))
        assert len(truncated) <= MAX_TRUNCATED_SAMPLES

    def test_corruption_injects_non_finite_loss(self):
        from repro.netsim.capture import PathMeasurements

        injector = FaultInjector(FaultProfile.parse("corrupt_loss"), seed=3)
        measurements = PathMeasurements([0.0, 1.0], [0.5], 0.03)
        injector.corrupt_measurements(measurements)
        assert not np.all(np.isfinite(measurements.loss_times))


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, backoff_factor=2.0, max_backoff_s=5.0
        )
        assert [policy.backoff_s(i) for i in range(4)] == [1.0, 2.0, 4.0, 5.0]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_total_time_s=0.0)

    def test_budget_counts_attempts(self):
        budget = RetryBudget(RetryPolicy(max_attempts=2), clock=lambda: 0.0)
        assert budget.allows_another()
        budget.charge_attempt()
        assert budget.allows_another()
        budget.charge_attempt()
        assert not budget.allows_another()

    def test_budget_accounts_virtual_backoff_against_time_limit(self):
        policy = RetryPolicy(
            max_attempts=10, base_backoff_s=4.0, backoff_factor=2.0,
            max_total_time_s=10.0,
        )
        budget = RetryBudget(policy, clock=lambda: 0.0)
        budget.charge_attempt()
        assert budget.charge_backoff() == 4.0
        assert budget.allows_another()
        budget.charge_attempt()
        assert budget.charge_backoff() == 8.0
        assert budget.elapsed_s() == 12.0
        assert not budget.allows_another()

    def test_budget_sleep_callable_receives_delay(self):
        slept = []
        budget = RetryBudget(
            RetryPolicy(base_backoff_s=0.25),
            clock=lambda: 0.0,
            sleep=slept.append,
        )
        budget.charge_attempt()
        budget.charge_backoff()
        assert slept == [0.25]
