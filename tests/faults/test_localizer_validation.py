"""Localizer input validation: unusable measurements never raise."""

import numpy as np
import pytest

from repro.core.localizer import (
    LocalizationOutcome,
    Mechanism,
    SimultaneousReplayResult,
    WeHeYLocalizer,
)
from repro.netsim.capture import PathMeasurements
from repro.wehe.apps import make_trace
from repro.wehe.traces import bit_invert


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def trace_pair(rng):
    trace = make_trace("netflix", 60.0, rng)
    return trace, bit_invert(trace)


def healthy_measurements(rng):
    sends = np.sort(rng.uniform(0, 60, 2000))
    return PathMeasurements(sends, sends[:40], 0.035)


def healthy_result(rng):
    return SimultaneousReplayResult(
        samples_1=rng.normal(2e6, 0.05e6, 100),
        samples_2=rng.normal(2e6, 0.05e6, 100),
        measurements_1=healthy_measurements(rng),
        measurements_2=healthy_measurements(rng),
    )


class ScriptedService:
    """Replay service whose outputs are overridable per test."""

    def __init__(self, rng, single=None, simultaneous=None):
        self.rng = rng
        self._single = single
        self._simultaneous = simultaneous
        self.simultaneous_calls = 0

    def single_replay(self, trace):
        if self._single is not None:
            return self._single
        return self.rng.normal(2e6, 0.05e6, 100)

    def simultaneous_replay(self, trace):
        self.simultaneous_calls += 1
        if self._simultaneous is not None:
            return self._simultaneous
        return healthy_result(self.rng)


def localize(rng, trace_pair, **service_kwargs):
    service = ScriptedService(rng, **service_kwargs)
    localizer = WeHeYLocalizer(rng, rng.normal(0.0, 0.08, 80))
    original, inverted = trace_pair
    return localizer.localize(service, original, inverted), service


class TestLocalizerValidation:
    def test_too_few_single_replay_samples(self, rng, trace_pair):
        report, service = localize(rng, trace_pair, single=np.ones(2))
        assert report.outcome is LocalizationOutcome.NO_EVIDENCE
        assert report.mechanism is Mechanism.NONE
        assert report.invalid
        assert report.reason_code == "invalid:single-replay:too-few-samples"
        # Validation short-circuits before the expensive replays run.
        assert service.simultaneous_calls == 0

    def test_nan_single_replay_samples(self, rng, trace_pair):
        samples = np.ones(100)
        samples[3] = np.nan
        report, _ = localize(rng, trace_pair, single=samples)
        assert report.reason_code == "invalid:single-replay:non-finite-samples"

    def test_negative_throughput_samples(self, rng, trace_pair):
        samples = np.ones(100)
        samples[7] = -1.0
        report, _ = localize(rng, trace_pair, single=samples)
        assert report.reason_code == "invalid:single-replay:negative-samples"

    def test_truncated_simultaneous_samples(self, rng, trace_pair):
        bad = healthy_result(rng)
        bad.samples_2 = bad.samples_2[:3]
        report, _ = localize(rng, trace_pair, simultaneous=bad)
        assert report.invalid
        assert report.reason_code == "invalid:original-sim-p2:too-few-samples"

    def test_empty_loss_measurements(self, rng, trace_pair):
        bad = healthy_result(rng)
        bad.measurements_1 = PathMeasurements([], [], 0.035)
        report, _ = localize(rng, trace_pair, simultaneous=bad)
        assert report.reason_code == "invalid:original-sim-p1:empty-measurements"

    def test_nan_loss_timestamps(self, rng, trace_pair):
        bad = healthy_result(rng)
        bad.measurements_2.loss_times = np.append(
            bad.measurements_2.loss_times, np.nan
        )
        report, _ = localize(rng, trace_pair, simultaneous=bad)
        assert report.reason_code == "invalid:original-sim-p2:non-finite-measurements"

    def test_healthy_inputs_are_not_flagged(self, rng, trace_pair):
        report, _ = localize(rng, trace_pair)
        assert not report.invalid
        assert report.reason_code != ""


class TestDetectorRobustness:
    def test_loss_correlation_drops_non_finite_timestamps(self, rng):
        from repro.core.loss_correlation import LossTrendCorrelation

        m1 = healthy_measurements(rng)
        m2 = healthy_measurements(rng)
        m1.loss_times = np.append(m1.loss_times, np.nan)
        result = LossTrendCorrelation().detect(m1, m2)
        assert result.common_bottleneck in (True, False)  # no exception

    def test_loss_correlation_handles_unusable_rtt(self, rng):
        from repro.core.loss_correlation import LossTrendCorrelation

        m1 = healthy_measurements(rng)
        m2 = healthy_measurements(rng)
        m2.rtt = float("nan")
        result = LossTrendCorrelation().detect(m1, m2)
        assert not result.common_bottleneck
        assert result.n_intervals_tested == 0

    def test_throughput_comparison_filters_nan_samples(self, rng):
        from repro.core.throughput_comparison import ThroughputComparison

        x = np.append(rng.normal(2e6, 0.05e6, 100), np.nan)
        y = np.append(rng.normal(2e6, 0.05e6, 100), np.nan)
        tdiff = rng.normal(0.0, 0.08, 80)
        result = ThroughputComparison(rng).detect(x, y, tdiff)
        assert np.isfinite(result.pvalue)
