"""Seeded path flaps: plan determinism, arming, and firing."""

import numpy as np
import pytest

from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.faults import PathFlapInjector, PathFlapPlan, plan_path_flap
from repro.netsim.engine import Simulator
from repro.netsim.multipath import MultipathLink
from repro.netsim.queues import DropTailQueue
from repro.obs import metrics as obs_metrics
from repro.wehe.apps import make_trace


def make_bundle(sim, n):
    qdiscs = [DropTailQueue(10_000_000) for _ in range(n)]
    return MultipathLink(sim, "lc", 8e6, 0.0, qdiscs)


class TestPlan:
    def test_deterministic(self):
        a = plan_path_flap(7, 3, 4, 2.0, 10.0)
        b = plan_path_flap(7, 3, 4, 2.0, 10.0)
        assert a == b
        assert isinstance(a, PathFlapPlan)

    def test_seed_and_run_redraw(self):
        base = plan_path_flap(7, 3, 4, 2.0, 10.0)
        assert plan_path_flap(8, 3, 4, 2.0, 10.0) != base
        assert plan_path_flap(7, 4, 4, 2.0, 10.0) != base

    def test_time_inside_window(self):
        for seed in range(5):
            for run in range(5):
                plan = plan_path_flap(seed, run, 4, 2.0, 10.0)
                assert 2.0 + 0.35 * 10.0 <= plan.time_s <= 2.0 + 0.65 * 10.0
                assert 0 <= plan.member < 4

    def test_custom_window(self):
        plan = plan_path_flap(0, 0, 2, 0.0, 10.0, window=(0.9, 1.0))
        assert 9.0 <= plan.time_s <= 10.0


class TestInjector:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            PathFlapInjector(probability=1.5)
        with pytest.raises(ValueError):
            PathFlapInjector(window=(0.8, 0.2))

    def test_probability_gates_runs(self):
        never = PathFlapInjector(seed=0, probability=0.0)
        always = PathFlapInjector(seed=0, probability=1.0)
        sometimes = PathFlapInjector(seed=0, probability=0.5)
        decisions = [
            sometimes.plan(run, 4, 0.0, 10.0) is not None for run in range(40)
        ]
        assert all(never.plan(run, 4, 0.0, 10.0) is None for run in range(40))
        assert all(
            always.plan(run, 4, 0.0, 10.0) is not None for run in range(40)
        )
        assert any(decisions) and not all(decisions)
        # The gate is part of the schedule: same seed, same decisions.
        replay = PathFlapInjector(seed=0, probability=0.5)
        assert decisions == [
            replay.plan(run, 4, 0.0, 10.0) is not None for run in range(40)
        ]

    def test_arm_skips_plain_links(self):
        class PlainLink:
            members = None

        injector = PathFlapInjector(seed=1)
        sim = Simulator()
        assert injector.arm(sim, PlainLink(), 0.0, 10.0) is None
        assert injector.runs == 1
        assert injector.flaps_armed == 0

    def test_armed_flap_takes_member_down(self):
        injector = PathFlapInjector(seed=1)
        sim = Simulator()
        bundle = make_bundle(sim, 4)
        plan = injector.arm(sim, bundle, 0.0, 10.0)
        assert plan is not None
        assert injector.flaps_armed == 1
        sim.run()
        assert injector.flaps_fired == 1
        assert plan.member not in bundle.up_members
        assert len(bundle.up_members) == 3

    def test_last_member_standing_is_never_failed(self):
        injector = PathFlapInjector(seed=1)
        sim = Simulator()
        bundle = make_bundle(sim, 2)
        plan = injector.arm(sim, bundle, 0.0, 10.0)
        # The other member dies first; the flap must fizzle, not raise.
        bundle.fail_member(1 - plan.member)
        sim.run()
        assert injector.flaps_fired == 0
        assert bundle.up_members == (plan.member,)

    def test_obs_counters(self):
        sink = obs_metrics.MetricsSink()
        with obs_metrics.use_sink(sink):
            injector = PathFlapInjector(seed=1)
            sim = Simulator()
            bundle = make_bundle(sim, 2)
            injector.arm(sim, bundle, 0.0, 10.0)
            sim.run()
        counters = sink.snapshot()["counters"]
        assert counters["faults.path_flap.armed"] == 1
        assert counters["faults.path_flap.fired"] == 1


class TestServiceIntegration:
    def test_flap_fires_during_simultaneous_replay(self):
        config = ScenarioConfig(
            app="zoom", limiter="common", duration=4.0, seed=0, multipath=2
        )
        injector = PathFlapInjector(seed=3, probability=1.0)
        service = NetsimReplayService(config, path_flap=injector)
        trace = make_trace(config.app, config.duration, service._trace_rng)
        service.simultaneous_replay(trace)
        assert injector.flaps_armed >= 1
        assert injector.flaps_fired >= 1
        link = service.last_environment.topology.link_c
        assert len(link.up_members) == 1
        assert link.rehashes >= 1  # survivors inherited the flows

    def test_plain_scenario_arms_nothing(self):
        config = ScenarioConfig(
            app="zoom", limiter="common", duration=4.0, seed=0
        )
        injector = PathFlapInjector(seed=3, probability=1.0)
        service = NetsimReplayService(config, path_flap=injector)
        trace = make_trace(config.app, config.duration, service._trace_rng)
        service.simultaneous_replay(trace)
        assert injector.runs >= 1
        assert injector.flaps_armed == 0
