"""Traceroute fault injection and the fallback-RTT degradation path."""

from collections import Counter

import numpy as np
import pytest

from repro.core.coordinator import (
    TRACEROUTE_FALLBACK_RTT_S,
    TracerouteFallbackWarning,
    rtts_from_traceroutes,
)
from repro.faults import (
    FaultInjector,
    FaultProfile,
    FaultSite,
    TracerouteTimeoutError,
)
from repro.mlab.internet import SyntheticInternet
from repro.mlab.traceroute import run_traceroute


@pytest.fixture(scope="module")
def internet():
    rng = np.random.default_rng(17)
    return SyntheticInternet(
        rng, n_isps=3, clients_per_isp=2,
        icmp_block_fraction=0.0, alias_fraction=0.0,
    )


class TestTracerouteFaults:
    def test_timeout_fault_raises(self, internet):
        rng = np.random.default_rng(0)
        injector = FaultInjector(FaultProfile.parse("traceroute_timeout"), seed=0)
        with pytest.raises(TracerouteTimeoutError):
            run_traceroute(
                internet, internet.servers[0], internet.clients[0], rng,
                fault_injector=injector,
            )
        assert injector.fires_by_site[FaultSite.TRACEROUTE_TIMEOUT] == 1

    def test_empty_fault_returns_hopless_record(self, internet):
        rng = np.random.default_rng(0)
        injector = FaultInjector(FaultProfile.parse("traceroute_empty"), seed=0)
        record = run_traceroute(
            internet, internet.servers[0], internet.clients[0], rng,
            fault_injector=injector,
        )
        assert record.hops == ()
        assert record.links == ()
        assert not record.reached_destination
        assert record.last_hop_ip is None

    def test_no_injector_no_fault(self, internet):
        rng = np.random.default_rng(0)
        record = run_traceroute(
            internet, internet.servers[0], internet.clients[0], rng
        )
        assert record.hops


class TestFallbackRtt:
    def test_empty_traceroutes_degrade_to_fallback_with_warning(self, internet):
        rng = np.random.default_rng(1)
        injector = FaultInjector(FaultProfile.parse("traceroute_empty"), seed=1)
        telemetry = Counter()
        pair = (internet.servers[0].name, internet.servers[1].name)
        with pytest.warns(TracerouteFallbackWarning):
            rtts = rtts_from_traceroutes(
                internet, rng, pair, internet.clients[0],
                fault_injector=injector, telemetry=telemetry,
            )
        assert rtts == (TRACEROUTE_FALLBACK_RTT_S, TRACEROUTE_FALLBACK_RTT_S)
        assert telemetry["traceroute_fallback_rtt"] == 2

    def test_healthy_traceroutes_use_measured_rtts(self, internet):
        rng = np.random.default_rng(1)
        telemetry = Counter()
        pair = (internet.servers[0].name, internet.servers[1].name)
        rtts = rtts_from_traceroutes(
            internet, rng, pair, internet.clients[0], telemetry=telemetry
        )
        assert telemetry["traceroute_fallback_rtt"] == 0
        assert all(rtt > 0 for rtt in rtts)


class TestTopologyInvalidation:
    def test_invalidate_removes_entry(self, internet):
        from repro.mlab.annotations import AnnotationDatabase
        from repro.mlab.topology_construction import TopologyConstructor
        from repro.mlab.traceroute import collect_month

        rng = np.random.default_rng(17)
        constructor = TopologyConstructor(AnnotationDatabase(internet))
        records = collect_month(
            internet, rng, tests_per_client=len(internet.servers)
        )
        database = constructor.build(records)
        assert len(database) > 0
        client = next(
            c for c in internet.clients if database.lookup(c.ip, c.asn)
        )
        entry = database.lookup(client.ip, client.asn)[0]
        before = len(database)
        assert database.invalidate(entry)
        assert len(database) == before - 1
        assert entry not in database.lookup(client.ip, client.asn)
        # Idempotent: a second invalidation is a no-op.
        assert not database.invalidate(entry)

    def test_lookup_returns_a_copy(self, internet):
        from repro.mlab.annotations import AnnotationDatabase
        from repro.mlab.topology_construction import TopologyConstructor
        from repro.mlab.traceroute import collect_month

        rng = np.random.default_rng(17)
        constructor = TopologyConstructor(AnnotationDatabase(internet))
        records = collect_month(
            internet, rng, tests_per_client=len(internet.servers)
        )
        database = constructor.build(records)
        client = next(
            c for c in internet.clients if database.lookup(c.ip, c.asn)
        )
        entries = database.lookup(client.ip, client.asn)
        entries.clear()
        assert database.lookup(client.ip, client.asn)
