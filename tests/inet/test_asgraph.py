"""Seeded AS-graph generator: structure, determinism, link state."""

import pytest

from repro.inet import generate_as_graph
from repro.inet.asgraph import CUSTOMER_PROVIDER, PEER


@pytest.fixture(scope="module")
def graph():
    return generate_as_graph(3, n_ases=300)


class TestStructure:
    def test_requested_size(self, graph):
        assert len(graph.asns) >= 300

    def test_tier1_clique_fully_peered(self, graph):
        tier1 = [a for a in graph.asns if graph.tiers[a] == "tier1"]
        assert len(tier1) >= 3
        for a in tier1:
            for b in tier1:
                if a != b:
                    assert graph.relationship(a, b)[0] == PEER

    def test_tier1_has_no_providers(self, graph):
        for asn in graph.asns:
            if graph.tiers[asn] == "tier1":
                assert graph.providers(asn) == ()

    def test_everyone_else_has_a_provider(self, graph):
        for asn in graph.asns:
            if graph.tiers[asn] != "tier1":
                assert len(graph.providers(asn)) >= 1

    def test_stubs_have_no_customers(self, graph):
        for asn in graph.asns:
            if graph.tiers[asn] == "stub":
                assert graph.customers(asn) == ()

    def test_degree_distribution_is_skewed(self, graph):
        degrees = sorted(graph.degree(a) for a in graph.asns)
        median = degrees[len(degrees) // 2]
        assert degrees[-1] >= 8 * max(median, 1)

    def test_relationship_orientation(self, graph):
        for asn in graph.asns:
            for provider in graph.providers(asn):
                assert graph.relationship(asn, provider) == (CUSTOMER_PROVIDER, asn, provider)
                assert asn in graph.customers(provider)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        a = generate_as_graph(11, n_ases=200)
        b = generate_as_graph(11, n_ases=200)
        assert a.serialize() == b.serialize()
        assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_differ(self):
        a = generate_as_graph(11, n_ases=200)
        b = generate_as_graph(12, n_ases=200)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_ignores_runtime_link_state(self, graph):
        before = graph.fingerprint()
        asn = next(a for a in graph.asns if graph.providers(a))
        provider = graph.providers(asn)[0]
        graph.link_down(asn, provider)
        try:
            assert graph.fingerprint() == before
        finally:
            graph.link_up(asn, provider)


class TestLinkState:
    def test_down_link_leaves_adjacency(self):
        graph = generate_as_graph(5, n_ases=120)
        asn = next(a for a in graph.asns if graph.providers(a))
        provider = graph.providers(asn)[0]
        graph.link_down(asn, provider)
        assert provider not in graph.providers(asn)
        assert asn not in graph.customers(provider)
        assert not graph.link_is_up(asn, provider)
        assert graph.has_edge(asn, provider)  # the edge itself persists
        graph.link_up(asn, provider)
        assert provider in graph.providers(asn)
        assert graph.link_is_up(asn, provider)
        assert graph.down_links == ()
