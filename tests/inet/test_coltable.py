"""Columnar backend: exact behavioral parity with the row ``Table``."""

import pytest

from repro.inet.coltable import ColumnarTable, DictColumn
from repro.mlab.tables import Table, make_table


def _pair(columns):
    return Table("t", columns), ColumnarTable("t", columns)


def _rows(table):
    return [dict(r) for r in table]


class TestParity:
    """Every operation must return identical rows on both backends."""

    def _filled(self, columns, rows):
        row_t, col_t = _pair(columns)
        row_t.extend(rows)
        col_t.extend(rows)
        return row_t, col_t

    def test_insert_iter_scan_column(self):
        rows = [{"k": f"ip{i % 3}", "v": i} for i in range(10)]
        row_t, col_t = self._filled(("k", "v"), rows)
        assert _rows(row_t) == _rows(col_t) == rows
        assert row_t.column("k") == col_t.column("k")
        predicate = lambda r: r["v"] % 2 == 0  # noqa: E731
        assert list(row_t.scan(predicate)) == list(col_t.scan(predicate))
        assert len(row_t) == len(col_t) == 10

    def test_schema_errors_match(self):
        row_t, col_t = _pair(("a", "b"))
        for table in (row_t, col_t):
            with pytest.raises(ValueError):
                table.insert(a=1)
            with pytest.raises(ValueError):
                table.insert(a=1, b=2, c=3)
            with pytest.raises(ValueError):
                table.extend([{"a": 1}])
            with pytest.raises(KeyError):
                table.column("missing")

    def test_where_equals(self):
        rows = [{"k": f"ip{i % 4}", "v": i} for i in range(12)]
        row_t, col_t = self._filled(("k", "v"), rows)
        for value in ("ip0", "ip3", "absent", None):
            assert _rows(row_t.where_equals("k", value)) == \
                _rows(col_t.where_equals("k", value))
        assert _rows(row_t.where_equals("v", 7)) == \
            _rows(col_t.where_equals("v", 7))

    def test_where_columns_equal(self):
        rows = [{"a": f"x{i % 3}", "b": f"x{i % 2}"} for i in range(12)]
        row_t, col_t = self._filled(("a", "b"), rows)
        assert _rows(row_t.where_columns_equal("a", "b")) == \
            _rows(col_t.where_columns_equal("a", "b"))

    def test_renamed(self):
        rows = [{"a": "x", "b": 1}]
        row_t, col_t = self._filled(("a", "b"), rows)
        assert _rows(row_t.renamed({"a": "c"})) == \
            _rows(col_t.renamed({"a": "c"}))
        for table in (row_t, col_t):
            with pytest.raises(KeyError):
                table.renamed({"zz": "c"})
            with pytest.raises(ValueError):
                table.renamed({"a": "b"})

    @pytest.mark.parametrize("how", ["inner", "left"])
    def test_join_duplicates_and_order(self, how):
        left_rows = [{"k": k, "x": i}
                     for i, k in enumerate(["a", "b", "a", "c", "d"])]
        right_rows = [{"k": k, "y": i}
                      for i, k in enumerate(["a", "c", "a", "a", "e"])]
        row_l, col_l = self._filled(("k", "x"), left_rows)
        row_r, col_r = self._filled(("k", "y"), right_rows)
        assert row_l.join(row_r, on="k", how=how) == \
            col_l.join(col_r, on="k", how=how)
        assert _rows(row_l.join_table(row_r, on="k", how=how)) == \
            _rows(col_l.join_table(col_r, on="k", how=how))

    def test_join_empty_right(self):
        row_l, col_l = self._filled(("k", "x"), [{"k": "a", "x": 1}])
        row_r, col_r = _pair(("k", "y"))
        for how in ("inner", "left"):
            assert row_l.join(row_r, on="k", how=how) == \
                col_l.join(col_r, on="k", how=how)

    def test_chained_join_through_none_fills(self):
        # A left join introduces None fills; joining/filtering the
        # result again must behave identically on both backends.
        left_rows = [{"k": k, "x": i} for i, k in enumerate(["a", "b", "c"])]
        right_rows = [{"k": "a", "y": "a"}, {"k": "c", "y": "zz"}]
        row_l, col_l = self._filled(("k", "x"), left_rows)
        row_r, col_r = self._filled(("k", "y"), right_rows)
        row_j = row_l.join_table(row_r, on="k", how="left")
        col_j = col_l.join_table(col_r, on="k", how="left")
        assert _rows(row_j) == _rows(col_j)
        assert _rows(row_j.where_columns_equal("k", "y")) == \
            _rows(col_j.where_columns_equal("k", "y"))
        row_r2, col_r2 = self._filled(("y", "z"), [{"y": "zz", "z": 9}])
        assert _rows(row_j.join_table(row_r2, on="y", how="left")) == \
            _rows(col_j.join_table(col_r2, on="y", how="left"))

    def test_unsupported_join_type(self):
        row_t, col_t = self._filled(("k",), [{"k": "a"}])
        for table in (row_t, col_t):
            with pytest.raises(ValueError):
                table.join_table(table, on="k", how="outer")

    def test_mixed_type_column_falls_back_to_object(self):
        rows = [{"k": "a", "v": 1}, {"k": "b", "v": "two"},
                {"k": "a", "v": None}]
        row_t, col_t = self._filled(("k", "v"), rows)
        assert _rows(row_t) == _rows(col_t)
        assert _rows(row_t.where_equals("v", "two")) == \
            _rows(col_t.where_equals("v", "two"))
        row_r, col_r = self._filled(("v", "w"), [{"v": 1, "w": "x"}])
        assert _rows(row_t.join_table(row_r, on="v")) == \
            _rows(col_t.join_table(col_r, on="v"))


class TestColumnarInternals:
    def test_make_table_backends(self):
        assert isinstance(make_table("t", ("a",), backend="row"), Table)
        assert isinstance(
            make_table("t", ("a",), backend="columnar"), ColumnarTable
        )
        with pytest.raises(ValueError):
            make_table("t", ("a",), backend="parquet")

    def test_string_columns_dictionary_encode(self):
        table = ColumnarTable("t", ("k",))
        table.extend([{"k": "b"}, {"k": "a"}, {"k": "b"}])
        col = table._column("k")
        assert isinstance(col, DictColumn)
        assert col.values.tolist() == ["a", "b"]
        assert col.codes.tolist() == [1, 0, 1]
        assert col.decode().tolist() == ["b", "a", "b"]

    def test_materialize_then_append(self):
        table = ColumnarTable("t", ("k", "v"))
        table.insert(k="a", v=1)
        table.materialize()
        table.insert(k="b", v=2)
        assert _rows(table) == [{"k": "a", "v": 1}, {"k": "b", "v": 2}]
        assert table.array("v").tolist() == [1, 2]

    def test_array_decodes_none_fills(self):
        left = ColumnarTable("l", ("k",))
        left.extend([{"k": "a"}, {"k": "b"}])
        right = ColumnarTable("r", ("k", "y"))
        right.insert(k="a", y="Y")
        joined = left.join_table(right, on="k", how="left")
        assert joined.array("y").tolist() == ["Y", None]
        assert joined.column("y") == ["Y", None]

    def test_renamed_is_a_view(self):
        table = ColumnarTable("t", ("a", "b"))
        table.insert(a="x", b=1)
        view = table.renamed({"a": "c"})
        assert view._arrays["c"] is table._arrays["a"]
