"""Route-dynamics schedules: determinism, shape, graph application."""

import pytest

from repro.inet import RouteDynamics, generate_as_graph, generate_schedule
from repro.inet.dynamics import (
    LINK_DOWN,
    LINK_UP,
    POLICY_FLIP,
    convergence_fraction,
    serialize_schedule,
)


@pytest.fixture(scope="module")
def graph():
    return generate_as_graph(4, n_ases=200)


class TestSchedule:
    def test_same_seed_byte_identical(self, graph):
        a = generate_schedule(graph, 17)
        b = generate_schedule(graph, 17)
        assert serialize_schedule(a) == serialize_schedule(b)

    def test_different_seed_differs(self, graph):
        a = generate_schedule(graph, 17)
        b = generate_schedule(graph, 18)
        assert serialize_schedule(a) != serialize_schedule(b)

    def test_every_failure_has_a_recovery(self, graph):
        events = generate_schedule(graph, 3, n_failures=3, n_flips=0)
        downs = [(e.a, e.b) for e in events if e.kind == LINK_DOWN]
        ups = [(e.a, e.b) for e in events if e.kind == LINK_UP]
        assert sorted(downs) == sorted(ups)
        for down in (e for e in events if e.kind == LINK_DOWN):
            up = next(e for e in events
                      if e.kind == LINK_UP and (e.a, e.b) == (down.a, down.b))
            assert up.time > down.time

    def test_failures_target_multihomed_stubs(self, graph):
        events = generate_schedule(graph, 3, n_failures=3, n_flips=1)
        for event in events:
            if event.kind in (LINK_DOWN, LINK_UP):
                assert len(graph.providers(event.a)) >= 2
                assert event.b in graph.providers(event.a)
            else:
                assert event.kind == POLICY_FLIP
                assert event.b in graph.providers(event.a)

    def test_targets_restrict_perturbed_stubs(self, graph):
        from repro.inet.dynamics import _flippable_stubs

        chosen = _flippable_stubs(graph)[:3]
        events = generate_schedule(graph, 3, n_failures=2, n_flips=1,
                                   targets=chosen)
        assert all(e.a in chosen for e in events)

    def test_ordered_by_time(self, graph):
        events = generate_schedule(graph, 9, n_failures=3, n_flips=2)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_no_eligible_targets_raises(self, graph):
        with pytest.raises(ValueError):
            generate_schedule(graph, 1, targets=[-1])


class TestConvergenceFraction:
    def test_bounded_and_deterministic(self):
        for src, dst, idx in [(10, 5000, 0), (11, 5001, 3), (100, 5002, 7)]:
            f = convergence_fraction(src, dst, idx)
            assert 0.15 <= f < 1.0
            assert f == convergence_fraction(src, dst, idx)

    def test_varies_per_pair(self):
        values = {convergence_fraction(10, 5000 + i, 0) for i in range(20)}
        assert len(values) > 15


class TestRouteDynamics:
    def test_apply_toggles_link_state(self, graph):
        events = generate_schedule(graph, 6, n_failures=1, n_flips=0)
        dynamics = RouteDynamics(events)
        down = next(e for e in events if e.kind == LINK_DOWN)
        up = next(e for e in events if e.kind == LINK_UP)

        assert [e.kind for e in dynamics.due_events(down.time + 0.1)] == \
            [LINK_DOWN]
        dynamics.apply_to_graph(graph, down)
        assert not graph.link_is_up(down.a, down.b)

        assert [e.kind for e in dynamics.due_events(up.time + 0.1)] == \
            [LINK_UP]
        dynamics.apply_to_graph(graph, up)
        assert graph.link_is_up(down.a, down.b)
        assert dynamics.pending == ()

    def test_due_events_cursor_does_not_replay(self, graph):
        events = generate_schedule(graph, 6, n_failures=2, n_flips=1)
        dynamics = RouteDynamics(events)
        horizon = max(e.time for e in events) + 1.0
        first = dynamics.due_events(horizon)
        assert [e.serialize() for e in first] == \
            [e.serialize() for e in events]
        assert list(dynamics.due_events(horizon + 100.0)) == []

    def test_policy_flip_sets_provider_pref(self, graph):
        events = generate_schedule(graph, 8, n_failures=0, n_flips=1)
        dynamics = RouteDynamics(events)
        flip = events[0]
        assert flip.kind == POLICY_FLIP
        dynamics.apply_to_graph(graph, flip)
        try:
            assert graph.provider_pref[flip.a] == flip.b
        finally:
            graph.provider_pref.pop(flip.a, None)
