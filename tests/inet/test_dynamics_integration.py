"""Dynamics through the full stack: staleness, healing, verdict safety."""

import numpy as np
import pytest

from repro.core.coordinator import CoordinationStatus, WeHeYCoordinator
from repro.experiments.scenarios import ScenarioConfig
from repro.faults import RetryPolicy
from repro.inet import (
    PolicyInternet,
    RouteDynamics,
    TopologyOracle,
    generate_as_graph,
    generate_schedule,
)
from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.topology_construction import TopologyConstructor
from repro.mlab.traceroute import run_traceroute
from repro.mlab.verification import TopologyVerifier


def _build(seed=0, n_ases=300):
    graph = generate_as_graph(seed, n_ases=n_ases)
    internet = PolicyInternet(graph=graph, seed=seed, n_client_isps=8,
                              clients_per_isp=3)
    annotations = AnnotationDatabase(internet)
    rng = np.random.default_rng(7)
    records = [
        run_traceroute(internet, server, client, rng)
        for client in internet.clients
        for server in internet.servers
    ]
    database = TopologyConstructor(annotations).build(records)
    return internet, annotations, database


@pytest.fixture
def stack():
    return _build()


class TestStalenessLifecycle:
    def test_failure_makes_entries_stale_then_heals(self, stack):
        internet, _annotations, database = stack
        oracle = TopologyOracle(internet)
        events = generate_schedule(internet.graph, 1, n_failures=1,
                                   n_flips=0, targets=internet.isp_asns)
        internet.attach_dynamics(RouteDynamics(events))

        assert oracle.score(database)["precision"] == 1.0
        down = events[0]
        internet.advance_to(down.time + 1e-6)
        assert internet.telemetry["path_changes"] > 0
        stale = oracle.stale_entries(database)
        assert stale

        for entry, _client in stale:
            assert database.invalidate(entry)
        assert oracle.score(database)["precision"] == 1.0

        horizon = max(e.time + e.convergence_s for e in events) + 1.0
        internet.advance_to(horizon)
        assert internet.converged
        assert oracle.stale_entries(database) == []

    def test_stale_window_serves_old_path_until_deadline(self, stack):
        internet, _annotations, database = stack
        events = generate_schedule(internet.graph, 1, n_failures=1,
                                   n_flips=0, targets=internet.isp_asns)
        internet.attach_dynamics(RouteDynamics(events))
        down = events[0]

        affected = None
        before = {}
        for client in internet.clients:
            for server in internet.servers:
                before[(server.name, client.name)] = \
                    internet.current_as_path(server, client)
        internet.advance_to(down.time + 1e-6)
        for (server_name, client_name), old in before.items():
            server = next(s for s in internet.servers
                          if s.name == server_name)
            client = internet.find_client(client_name)
            now = internet.current_as_path(server, client)
            if now != old:
                affected = (server, client, old)
                break
        assert affected is not None
        server, client, old = affected
        # Mid-window the pair still observes its pre-event path.
        assert internet.effective_as_path(server, client) == old
        internet.advance_to(down.time + down.convergence_s + 1.0)
        assert internet.effective_as_path(server, client) == \
            internet.current_as_path(server, client)

    def test_schedule_without_coverage_changes_nothing(self, stack):
        internet, _annotations, database = stack
        oracle = TopologyOracle(internet)
        uncovered = [
            asn for asn in internet.graph.asns
            if internet.graph.tiers[asn] in ("stub", "content")
            and len(internet.graph.providers(asn)) >= 2
            and asn not in internet.isp_asns
            and asn not in {s.asn for s in internet.servers}
        ]
        events = generate_schedule(internet.graph, 2, n_failures=1,
                                   n_flips=0, targets=uncovered[:4])
        internet.attach_dynamics(RouteDynamics(events))
        internet.advance_to(events[0].time + 1e-6)
        assert oracle.stale_entries(database) == []


class TestCoordinatorPreflight:
    def test_preflight_invalidates_stale_and_avoids_wrong_verdicts(
        self, stack
    ):
        internet, annotations, database = stack
        oracle = TopologyOracle(internet)
        events = generate_schedule(internet.graph, 1, n_failures=1,
                                   n_flips=0, targets=internet.isp_asns)
        internet.attach_dynamics(RouteDynamics(events))
        internet.advance_to(events[0].time + 1e-6)
        stale = oracle.stale_entries(database)
        assert stale

        rng = np.random.default_rng(3)
        coordinator = WeHeYCoordinator(
            internet,
            database,
            TopologyVerifier(internet, annotations, rng,
                             route_change_probability=0.0),
            ScenarioConfig(app="zoom", limiter="common", duration=4.0,
                           fidelity="hybrid"),
            rng,
            np.random.default_rng(9).normal(0.0, 0.08, 80),
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
            preflight_verify=True,
        )
        client_names = []
        for _entry, client_name in stale:
            if client_name not in client_names:
                client_names.append(client_name)
        for client_name in client_names[:2]:
            report = coordinator.run_test(client_name)
            if report.status is CoordinationStatus.COMPLETED:
                assert oracle.pair_suitable(
                    report.server_pair[0], report.server_pair[1], client_name
                )
        assert (
            coordinator.telemetry["preflight_stale"]
            + coordinator.telemetry["topology_invalidated"]
        ) > 0
