"""TC end-to-end on the policy-routed internet, scored by the oracle."""

import numpy as np
import pytest

from repro.inet import PolicyInternet, TopologyOracle, generate_as_graph
from repro.inet.policy import is_valley_free
from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.tables import annotation_table, traceroute_table
from repro.mlab.topology_construction import (
    TopologyConstructor,
    build_topology_from_tables,
)
from repro.mlab.traceroute import run_traceroute


def _collect(internet, seed=7):
    rng = np.random.default_rng(seed)
    return [
        run_traceroute(internet, server, client, rng)
        for client in internet.clients
        for server in internet.servers
    ]


@pytest.fixture(scope="module")
def internet():
    graph = generate_as_graph(0, n_ases=300)
    return PolicyInternet(graph=graph, seed=0, n_client_isps=8,
                          clients_per_isp=3)


@pytest.fixture(scope="module")
def database(internet):
    records = _collect(internet)
    return TopologyConstructor(AnnotationDatabase(internet)).build(records)


class TestPolicyInternet:
    def test_routes_end_at_the_client(self, internet):
        for client in internet.clients[:6]:
            isp = internet.isp_of(client)
            for server in internet.servers:
                route = internet.route(server, client)
                assert route[-1] is isp.last_miles[client.name]

    def test_as_paths_are_valley_free(self, internet):
        for client in internet.clients[:6]:
            for server in internet.servers:
                path = internet.current_as_path(server, client)
                assert path is not None
                assert is_valley_free(internet.graph, path)

    def test_dict_lookups(self, internet):
        client = internet.clients[0]
        assert internet.find_client(client.name) is client
        assert internet.isp_of(client) in internet.isps
        with pytest.raises(KeyError):
            internet.find_client("nonesuch")

    def test_deterministic_construction(self):
        graph = generate_as_graph(1, n_ases=200)
        a = PolicyInternet(graph=graph, seed=5, n_client_isps=4)
        b = PolicyInternet(
            graph=generate_as_graph(1, n_ases=200), seed=5, n_client_isps=4
        )
        assert [c.ip for c in a.clients] == [c.ip for c in b.clients]
        assert [s.ip for s in a.servers] == [s.ip for s in b.servers]


class TestOracleScore:
    def test_tc_is_perfect_on_clean_paths(self, internet, database):
        score = TopologyOracle(internet).score(database)
        assert score["precision"] == 1.0
        assert score["recall"] >= 0.9

    def test_messiness_costs_recall_not_precision(self):
        graph = generate_as_graph(0, n_ases=300)
        internet = PolicyInternet(
            graph=graph, seed=0, n_client_isps=8, clients_per_isp=3,
            icmp_block_fraction=0.25, alias_fraction=0.3,
        )
        database = TopologyConstructor(AnnotationDatabase(internet)).build(
            _collect(internet)
        )
        score = TopologyOracle(internet).score(database)
        assert score["precision"] == 1.0

    def test_table_paths_match_object_path(self, internet, database):
        records = _collect(internet)
        annotations = AnnotationDatabase(internet)
        reference = sorted(
            (key, e.server_pair)
            for key, entries in database.entries.items()
            for e in entries
        )
        for backend in ("row", "columnar"):
            built = build_topology_from_tables(
                traceroute_table(records, backend=backend),
                annotation_table(annotations, backend=backend),
            )
            assert sorted(
                (key, e.server_pair)
                for key, entries in built.entries.items()
                for e in entries
            ) == reference
