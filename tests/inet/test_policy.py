"""Gao-Rexford policy routing: valley-freedom, preference, export."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inet import compute_routes, as_path, generate_as_graph
from repro.inet.asgraph import ASGraph
from repro.inet.policy import is_export_compliant, is_valley_free


def _handmade():
    r"""A small graph with every preference case pinned by hand.

            1 --- 2        (tier-1 peers)
           / \     \
          3   4     5      (transit; customers of tier-1)
         / \   \   /
        6   7   8          (stubs; 8 is multihomed to 4 and 5)
    """
    g = ASGraph()
    for asn, tier in [(1, "tier1"), (2, "tier1"), (3, "transit"),
                      (4, "transit"), (5, "transit"), (6, "stub"),
                      (7, "stub"), (8, "stub")]:
        g.add_as(asn, tier)
    g.add_peer(1, 2)
    g.add_customer(3, 1)
    g.add_customer(4, 1)
    g.add_customer(5, 2)
    g.add_customer(6, 3)
    g.add_customer(7, 3)
    g.add_customer(8, 4)
    g.add_customer(8, 5)
    return g


class TestHandmadePreference:
    def test_customer_route_beats_peer_and_provider(self):
        g = _handmade()
        routes = compute_routes(g, 8)
        # 1 can reach 8 via its customer 4 (customer route) or via its
        # peer 2 -> 5 -> 8; Gao-Rexford picks the customer route.
        assert as_path(routes, 1, 8) == (1, 4, 8)

    def test_peer_route_beats_provider_route(self):
        g = _handmade()
        routes = compute_routes(g, 7)
        # 2's only options to 7: peer route via 1 (1->3->7) or nothing;
        # the peer route must exist and be taken.
        assert as_path(routes, 2, 7) == (2, 1, 3, 7)

    def test_shortest_path_within_preference_class(self):
        g = _handmade()
        routes = compute_routes(g, 6)
        # 7 reaches 6 through their common provider 3, not via tier-1.
        assert as_path(routes, 7, 6) == (7, 3, 6)

    def test_unrouted_after_partition(self):
        g = _handmade()
        g.link_down(6, 3)
        routes = compute_routes(g, 6)
        assert as_path(routes, 7, 6) is None
        g.link_up(6, 3)
        routes = compute_routes(g, 6)
        assert as_path(routes, 7, 6) == (7, 3, 6)

    def test_provider_pref_flips_stub_choice(self):
        g = _handmade()
        base = as_path(compute_routes(g, 6), 8, 6)
        g.provider_pref[8] = 5
        flipped = as_path(compute_routes(g, 6), 8, 6)
        assert base[1] == 4
        assert flipped[1] == 5


@pytest.mark.parametrize("seed", range(5))
def test_all_paths_policy_compliant(seed):
    graph = generate_as_graph(seed, n_ases=150)
    dests = graph.asns[:: max(1, len(graph.asns) // 8)]
    for dest in dests:
        routes = compute_routes(graph, dest)
        for src in graph.asns:
            path = as_path(routes, src, dest)
            if path is None:
                continue
            assert path[0] == src and path[-1] == dest
            assert len(set(path)) == len(path)
            assert is_valley_free(graph, path)
            assert is_export_compliant(graph, path)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), dest_pick=st.integers(0, 10 ** 6))
def test_property_valley_free_everywhere(seed, dest_pick):
    graph = generate_as_graph(seed % 7, n_ases=80)
    dest = graph.asns[dest_pick % len(graph.asns)]
    routes = compute_routes(graph, dest)
    for src in graph.asns:
        path = as_path(routes, src, dest)
        if path is not None:
            assert is_valley_free(graph, path)
            assert is_export_compliant(graph, path)


def test_routing_tree_deterministic():
    graph = generate_as_graph(2, n_ases=150)
    dest = graph.asns[0]
    a = compute_routes(graph, dest)
    b = compute_routes(graph, dest)
    assert a == b
