"""Load generator acceptance: determinism, fairness, overload behaviour."""

import json

import pytest

from repro.faults.chaos import ServiceChaosProfile
from repro.loadgen.arrivals import ArrivalProcess, TenantLoad, generate_trace
from repro.loadgen.scenarios import (
    SCENARIOS,
    build_scenario,
    capacity_rps,
    decision_sequence,
    run_scenario,
    service_config,
    write_bench,
)
from repro.service.protocol import TERMINAL_STATUSES, parse_submission

DURATION_S = 30.0


@pytest.fixture(scope="module")
def scenario_cache():
    """Each scenario is expensive enough to share across tests."""
    cache = {}

    def get(name, seed=0, chaos=None):
        key = (name, seed, chaos.name if chaos else None)
        if key not in cache:
            cache[key] = run_scenario(
                name, seed=seed, duration_s=DURATION_S, chaos=chaos
            )
        return cache[key]

    return get


class TestArrivals:
    def test_same_seed_same_times(self):
        a = ArrivalProcess(rate_rps=5.0, seed=11).times(60.0)
        b = ArrivalProcess(rate_rps=5.0, seed=11).times(60.0)
        assert a == b
        c = ArrivalProcess(rate_rps=5.0, seed=12).times(60.0)
        assert a != c

    def test_mean_rate_is_respected(self):
        times = ArrivalProcess(rate_rps=10.0, seed=3).times(200.0)
        # 2000 expected; modulation widens the variance, so take 5 sigma.
        assert 2000 * 0.6 < len(times) < 2000 * 1.4
        assert all(0.0 <= t < 200.0 for t in times)
        assert times == sorted(times)

    def test_ramp_from_zero_produces_arrivals(self):
        # The regression that motivated thinning: a rate function that
        # starts at zero must not stall the whole process.
        process = ArrivalProcess(
            rate_rps=10.0, seed=7, rate_fn=lambda t: 2.0 * t / 100.0
        )
        times = process.times(100.0)
        assert len(times) > 100
        first_half = sum(1 for t in times if t < 50.0)
        assert first_half < len(times) - first_half  # density grows

    def test_generate_trace_is_deterministic_and_parseable(self):
        tenants = [
            TenantLoad("a", rate_rps=3.0, apps=("netflix", "skype")),
            TenantLoad("b", rate_rps=2.0),
        ]
        trace1 = generate_trace(tenants, 20.0, seed=5)
        trace2 = generate_trace(tenants, 20.0, seed=5)
        assert trace1 == trace2
        assert generate_trace(tenants, 20.0, seed=6) != trace1
        times = [t for t, _raw in trace1]
        assert times == sorted(times)
        for _t, raw in trace1:
            submission = parse_submission(dict(raw))
            assert submission.tenant in ("a", "b")


class TestDeterminismAcceptance:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_identical_admission_decisions_across_reruns(self, name):
        _s1, _r1, core1 = run_scenario(name, seed=2, duration_s=10.0)
        _s2, _r2, core2 = run_scenario(name, seed=2, duration_s=10.0)
        assert decision_sequence(core1) == decision_sequence(core2)

    def test_chaos_schedule_is_reproducible(self):
        chaos = ServiceChaosProfile.smoke(seed=23)
        assert chaos.schedule(500) == ServiceChaosProfile.smoke(seed=23).schedule(500)
        assert chaos.schedule(500) != ServiceChaosProfile.smoke(seed=24).schedule(500)
        _s1, _r1, core1 = run_scenario("spike", seed=2, duration_s=10.0,
                                       chaos=chaos)
        _s2, _r2, core2 = run_scenario("spike", seed=2, duration_s=10.0,
                                       chaos=ServiceChaosProfile.smoke(seed=23))
        assert decision_sequence(core1) == decision_sequence(core2)

    def test_parse_grammar(self):
        assert ServiceChaosProfile.parse("off") is None
        profile = ServiceChaosProfile.parse("malformed=0.2,seed=9")
        assert profile.malformed == 0.2 and profile.seed == 9
        assert ServiceChaosProfile.parse("smoke").name == "smoke"


class TestTerminationInvariant:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_every_submission_terminates_exactly_once(self, name,
                                                      scenario_cache):
        # run_scenario asserts the invariant internally; re-check the
        # statuses land only in the terminal contract.
        summary, result, _core = scenario_cache(name)
        result.check_one_terminal_response_each()
        assert set(summary["responses"]) <= set(TERMINAL_STATUSES)
        assert sum(summary["responses"].values()) == summary["submissions"]

    def test_chaos_run_still_terminates_every_submission(self, scenario_cache):
        summary, result, _core = scenario_cache(
            "sustained2x", seed=5, chaos=ServiceChaosProfile.smoke())
        result.check_one_terminal_response_each()
        # Malformed injections surface as FAILED, not as lost requests.
        assert summary["responses"].get("FAILED", 0) > 0


class TestOverloadBehaviour:
    def test_sustained_overload_sheds_instead_of_queueing(self, scenario_cache):
        summary, _result, _core = scenario_cache("sustained2x")
        capacity = summary["capacity_rps"]
        assert summary["responses"]["REJECTED_OVERLOAD"] > 0
        # Goodput stays near capacity: overload costs the excess, not
        # the service.
        assert summary["throughput_rps"] > 0.7 * capacity
        assert summary["throughput_rps"] < 1.1 * capacity

    def test_spike_degrades_then_recovers(self, scenario_cache):
        summary, _result, _core = scenario_cache("spike")
        assert summary["responses"]["REJECTED_OVERLOAD"] > 0
        assert len(summary["governor_transitions"]) >= 2
        assert summary["recovered_to_healthy"]

    def test_ramp_walks_the_state_machine_in_order(self, scenario_cache):
        _summary, _result, core = scenario_cache("ramp")
        states = [new for _t, _old, new, _why in core.governor.transitions]
        assert "degraded" in states
        assert states.index("degraded") == 0  # degrade before anything else


class TestFairnessAcceptance:
    def test_hot_tenant_capped_light_tenants_barely_notice(self,
                                                           scenario_cache):
        onehot, _r1, _c1 = scenario_cache("onehot")
        baseline, _r2, _c2 = scenario_cache("baseline")
        config = service_config()
        fair_share = 0.25 * capacity_rps(config) * DURATION_S
        hot = onehot["tenants"]["hot"]
        # The hot tenant is capped at (about) its fair share...
        assert hot["served"] <= fair_share * 1.15
        assert hot["statuses"]["REJECTED_OVERLOAD"] > hot["served"]
        # ...while the light tenants' tail latency stays within 2x of
        # the uncontended baseline (the ISSUE acceptance bound).
        def light_p99(summary):
            values = [
                tenant["p99_s"]
                for name, tenant in summary["tenants"].items()
                if name.startswith("light-") and tenant["p99_s"] is not None
            ]
            assert values
            return max(values)

        assert light_p99(onehot) <= 2.0 * max(light_p99(baseline), 1.0)

    def test_light_tenants_are_still_served(self, scenario_cache):
        onehot, _r, _c = scenario_cache("onehot")
        for i in range(4):
            tenant = onehot["tenants"][f"light-{i}"]
            served_fraction = tenant["served"] / max(
                sum(tenant["statuses"].values()), 1
            )
            assert served_fraction > 0.8


class TestBench:
    def test_write_bench_is_deterministic_and_parses(self, tmp_path):
        path = tmp_path / "BENCH_service.json"
        bench = write_bench(path, seed=1, duration_s=8.0,
                            scenarios=("spike", "baseline"))
        assert bench["deterministic"] is True
        on_disk = json.loads(path.read_text())
        assert set(on_disk["scenarios"]) == {"spike", "baseline"}
        for summary in on_disk["scenarios"].values():
            assert summary["deterministic_rerun"] is True


class TestBuildScenario:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("nope")

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_recipes_are_well_formed(self, name):
        tenants, rate_fn, config = build_scenario(name, duration_s=30.0)
        assert tenants
        assert capacity_rps(config) > 0
        if rate_fn is not None:
            assert rate_fn(15.0) >= 0.0
