"""Satellite surfaces added with the columnar engine: bulk append,
table factories, egress semantics, and dict-backed internet lookups."""

import numpy as np
import pytest

from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.internet import SyntheticInternet
from repro.mlab.tables import (
    TRACEROUTE_COLUMNS,
    Table,
    annotation_table,
    make_table,
    traceroute_table,
)
from repro.mlab.traceroute import run_traceroute


@pytest.fixture
def internet():
    return SyntheticInternet(np.random.default_rng(9))


class TestTableExtensions:
    def test_extend_appends_in_order(self):
        table = Table("t", ("a", "b"))
        table.extend({"a": i, "b": -i} for i in range(4))
        assert [r["a"] for r in table] == [0, 1, 2, 3]

    def test_extend_validates_schema(self):
        table = Table("t", ("a", "b"))
        with pytest.raises(ValueError):
            table.extend([{"a": 1, "b": 2}, {"a": 1}])

    def test_extend_copies_rows(self):
        table = Table("t", ("a",))
        row = {"a": 1}
        table.extend([row])
        row["a"] = 99
        assert list(table)[0]["a"] == 1

    def test_materialize_is_a_noop(self):
        table = Table("t", ("a",))
        table.insert(a=1)
        table.materialize()
        assert [r["a"] for r in table] == [1]

    def test_where_helpers(self):
        table = Table("t", ("a", "b"))
        table.extend([{"a": "x", "b": "x"}, {"a": "x", "b": "y"},
                      {"a": "z", "b": "y"}])
        assert len(table.where_equals("a", "x")) == 2
        assert len(table.where_columns_equal("a", "b")) == 1
        renamed = table.renamed({"a": "c"})
        assert renamed.columns == ("c", "b")
        assert [r["c"] for r in renamed] == ["x", "x", "z"]


class TestRecordTables:
    def test_traceroute_table_egress_chains_hops(self, internet):
        rng = np.random.default_rng(3)
        record = run_traceroute(
            internet, internet.servers[0], internet.clients[0], rng
        )
        table = traceroute_table([record])
        assert table.columns == TRACEROUTE_COLUMNS
        rows = list(table)
        # Each hop's egress is the from-IP of the next link; the last
        # hop has no next link so its egress equals itself.
        for row, nxt in zip(rows, rows[1:]):
            assert row["egress_ip"] == nxt["hop_ip"] or \
                row["egress_ip"] == row["hop_ip"]
        assert rows[-1]["egress_ip"] == rows[-1]["hop_ip"]

    def test_annotation_table_covers_database(self, internet):
        annotations = AnnotationDatabase(internet)
        table = annotation_table(annotations)
        for row in table:
            assert annotations.asn(row["hop_ip"]) == row["asn"]

    def test_backend_choice(self, internet):
        rng = np.random.default_rng(3)
        records = [run_traceroute(internet, internet.servers[0],
                                  internet.clients[0], rng)]
        row_t = traceroute_table(records, backend="row")
        col_t = traceroute_table(records, backend="columnar")
        assert [dict(r) for r in row_t] == [dict(r) for r in col_t]
        assert not isinstance(col_t, Table)

    def test_make_table_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            make_table("t", ("a",), backend="csv")


class TestInternetLookups:
    def test_isp_of_is_identity_stable(self, internet):
        for client in internet.clients:
            isp = internet.isp_of(client)
            assert client.name in isp.last_miles or \
                client in isp.clients

    def test_find_client_round_trips(self, internet):
        for client in internet.clients:
            assert internet.find_client(client.name) is client

    def test_unknown_names_raise(self, internet):
        with pytest.raises(KeyError):
            internet.find_client("client-does-not-exist")

        class FakeClient:
            name = "client-does-not-exist"
            isp = "isp-does-not-exist"

        with pytest.raises(KeyError):
            internet.isp_of(FakeClient())
