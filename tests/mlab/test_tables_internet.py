"""Table store and synthetic-internet tests."""

import numpy as np
import pytest

from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.internet import SyntheticInternet
from repro.mlab.tables import Table, annotation_table, traceroute_table
from repro.mlab.traceroute import run_traceroute


@pytest.fixture
def internet():
    return SyntheticInternet(np.random.default_rng(9))


class TestTable:
    def test_schema_enforced(self):
        table = Table("t", ("a", "b"))
        table.insert(a=1, b=2)
        with pytest.raises(ValueError):
            table.insert(a=1)
        with pytest.raises(ValueError):
            table.insert(a=1, b=2, c=3)

    def test_scan_with_predicate(self):
        table = Table("t", ("a",))
        for i in range(5):
            table.insert(a=i)
        assert [r["a"] for r in table.scan(lambda r: r["a"] % 2 == 0)] == [0, 2, 4]

    def test_inner_join(self):
        left = Table("l", ("k", "x"))
        right = Table("r", ("k", "y"))
        left.insert(k=1, x="a")
        left.insert(k=2, x="b")
        right.insert(k=1, y="A")
        rows = left.join(right, on="k")
        assert rows == [{"k": 1, "x": "a", "y": "A"}]

    def test_left_join_fills_none(self):
        left = Table("l", ("k", "x"))
        right = Table("r", ("k", "y"))
        left.insert(k=1, x="a")
        rows = left.join(right, on="k", how="left")
        assert rows == [{"k": 1, "x": "a", "y": None}]

    def test_join_multiplies_matches(self):
        left = Table("l", ("k", "x"))
        right = Table("r", ("k", "y"))
        left.insert(k=1, x="a")
        right.insert(k=1, y="A")
        right.insert(k=1, y="B")
        assert len(left.join(right, on="k")) == 2

    def test_rejects_empty_schema(self):
        with pytest.raises(ValueError):
            Table("t", ())

    def test_rejects_unknown_join_type(self):
        left = Table("l", ("k",))
        with pytest.raises(ValueError):
            left.join(left, on="k", how="outer")


class TestInternetModel:
    def test_every_pair_routes(self, internet):
        for server in internet.servers:
            for client in internet.clients:
                route = internet.route(server, client)
                assert route[-1].asn == client.asn

    def test_route_ends_in_client_isp(self, internet):
        client = internet.clients[0]
        isp = internet.isp_of(client)
        route = internet.route(internet.servers[0], client)
        in_isp = [r for r in route if r.asn == isp.asn]
        assert len(in_isp) >= 3  # border, aggregation, last mile

    def test_interfaces_unique_across_internet(self, internet):
        seen = set()
        for routers in internet.transit_routers.values():
            for router in routers:
                for ip in router.interfaces:
                    assert ip not in seen
                    seen.add(ip)

    def test_find_client(self, internet):
        client = internet.clients[3]
        assert internet.find_client(client.name) is client
        with pytest.raises(KeyError):
            internet.find_client("nope")


class TestBigQueryTables:
    def test_traceroute_table_flattens_hops(self, internet):
        rng = np.random.default_rng(10)
        record = run_traceroute(internet, internet.servers[0], internet.clients[0], rng)
        table = traceroute_table([record])
        assert len(table) == len(record.hops)
        rows = list(table.scan())
        assert rows[0]["hop_index"] == 0
        assert rows[0]["destination_ip"] == internet.clients[0].ip

    def test_merge_annotates_hops(self, internet):
        rng = np.random.default_rng(10)
        record = run_traceroute(internet, internet.servers[0], internet.clients[0], rng)
        annotations = AnnotationDatabase(internet)
        merged = traceroute_table([record]).join(
            annotation_table(annotations), on="hop_ip", how="left"
        )
        assert len(merged) >= len(record.hops)
        assert all("asn" in row for row in merged)

    def test_rtts_monotone_along_path(self, internet):
        rng = np.random.default_rng(12)
        record = run_traceroute(internet, internet.servers[1], internet.clients[2], rng)
        rtts = [hop.rtt_ms for hop in record.hops]
        assert all(b > a for a, b in zip(rtts, rtts[1:]))
