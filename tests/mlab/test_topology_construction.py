"""Topology-construction (Section 3.3) tests over the synthetic internet."""

import numpy as np
import pytest

from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.internet import SyntheticInternet
from repro.mlab.topology_construction import (
    TopologyConstructor,
    prefix_of,
)
from repro.mlab.traceroute import collect_month, run_traceroute


@pytest.fixture
def clean_internet():
    """No ICMP blocking, no aliasing: every traceroute is usable."""
    rng = np.random.default_rng(1)
    return (
        SyntheticInternet(
            rng, icmp_block_fraction=0.0, alias_fraction=0.0
        ),
        rng,
    )


@pytest.fixture
def messy_internet():
    rng = np.random.default_rng(2)
    return (
        SyntheticInternet(
            rng, icmp_block_fraction=0.5, alias_fraction=0.6
        ),
        rng,
    )


class TestPrefix:
    def test_slash24(self):
        assert prefix_of("10.1.2.3") == "10.1.2.0/24"

    def test_other_lengths(self):
        assert prefix_of("10.1.2.3", 16) == "10.1.0/16"
        assert prefix_of("10.1.2.3", 32) == "10.1.2.3"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            prefix_of("not-an-ip")
        with pytest.raises(ValueError):
            prefix_of("1.2.3.4", 20)


class TestFilters:
    def test_clean_traceroute_is_usable(self, clean_internet):
        internet, rng = clean_internet
        tc = TopologyConstructor(AnnotationDatabase(internet))
        record = run_traceroute(
            internet, internet.servers[0], internet.clients[0], rng
        )
        assert record.reached_destination
        assert tc.is_complete(record)
        assert tc.links_consistent(record)

    def test_icmp_blocking_fails_completeness(self):
        rng = np.random.default_rng(3)
        internet = SyntheticInternet(rng, icmp_block_fraction=1.0, alias_fraction=0.0)
        tc = TopologyConstructor(AnnotationDatabase(internet))
        record = run_traceroute(
            internet, internet.servers[0], internet.clients[0], rng
        )
        assert not record.reached_destination
        assert not tc.is_complete(record)

    def test_aliasing_breaks_link_consistency_sometimes(self):
        rng = np.random.default_rng(4)
        internet = SyntheticInternet(rng, icmp_block_fraction=0.0, alias_fraction=1.0)
        tc = TopologyConstructor(AnnotationDatabase(internet))
        consistent = [
            tc.links_consistent(
                run_traceroute(internet, server, internet.clients[0], rng)
            )
            for server in internet.servers
            for _ in range(5)
        ]
        assert not all(consistent)

    def test_annotation_miss_fails_closed(self, clean_internet):
        internet, rng = clean_internet
        empty = AnnotationDatabase(internet, rng=rng, miss_rate=1.0)
        tc = TopologyConstructor(empty)
        record = run_traceroute(
            internet, internet.servers[0], internet.clients[0], rng
        )
        assert not tc.is_complete(record)


class TestPairSearch:
    def test_database_contains_suitable_pairs(self, clean_internet):
        internet, rng = clean_internet
        tc = TopologyConstructor(AnnotationDatabase(internet))
        records = collect_month(internet, rng, tests_per_client=len(internet.servers))
        database = tc.build(records)
        assert len(database) > 0

    def test_suitable_pairs_converge_inside_the_isp(self, clean_internet):
        internet, rng = clean_internet
        annotations = AnnotationDatabase(internet)
        tc = TopologyConstructor(annotations)
        records = collect_month(internet, rng, tests_per_client=len(internet.servers))
        database = tc.build(records)
        for (prefix, asn), topologies in database.entries.items():
            for topology in topologies:
                assert topology.common_candidates
                for ip in topology.common_candidates:
                    assert annotations.asn(ip) == asn

    def test_same_site_servers_rejected(self, clean_internet):
        # Servers of one site share their whole transit chain: any
        # common node outside the ISP disqualifies the pair.
        internet, rng = clean_internet
        tc = TopologyConstructor(AnnotationDatabase(internet))
        client = internet.clients[0]
        same_site = [s for s in internet.servers if s.site == "site-0"]
        r1 = run_traceroute(internet, same_site[0], client, rng)
        r2 = run_traceroute(internet, same_site[1], client, rng)
        suitable, _ = tc.pair_is_suitable(
            r1, r2, internet.isp_of(client).asn
        )
        assert not suitable

    def test_lookup_by_client(self, clean_internet):
        internet, rng = clean_internet
        tc = TopologyConstructor(AnnotationDatabase(internet))
        records = collect_month(internet, rng, tests_per_client=len(internet.servers))
        database = tc.build(records)
        hits = 0
        for client in internet.clients:
            pairs = database.lookup(client.ip, client.asn)
            hits += bool(pairs)
        assert hits > len(internet.clients) / 2


class TestCoverage:
    def test_coverage_statistics_shape(self, messy_internet):
        internet, rng = messy_internet
        tc = TopologyConstructor(AnnotationDatabase(internet))
        records = collect_month(internet, rng)
        stats = tc.coverage(records)
        assert 0.0 < stats["complete_fraction"] < 1.0
        assert 0.0 <= stats["suitable_fraction"] <= 1.0
        assert stats["clients"] == len(internet.clients)

    def test_messier_internet_lowers_coverage(self, clean_internet, messy_internet):
        clean_net, clean_rng = clean_internet
        messy_net, messy_rng = messy_internet
        clean_stats = TopologyConstructor(AnnotationDatabase(clean_net)).coverage(
            collect_month(clean_net, clean_rng, tests_per_client=4)
        )
        messy_stats = TopologyConstructor(AnnotationDatabase(messy_net)).coverage(
            collect_month(messy_net, messy_rng, tests_per_client=4)
        )
        assert messy_stats["complete_fraction"] < clean_stats["complete_fraction"]
