"""Traceroute record semantics tests."""

import numpy as np
import pytest

from repro.mlab.internet import SyntheticInternet
from repro.mlab.traceroute import collect_month, run_traceroute


@pytest.fixture
def clean():
    rng = np.random.default_rng(14)
    return SyntheticInternet(rng, icmp_block_fraction=0.0, alias_fraction=0.0), rng


class TestRecordStructure:
    def test_links_chain_hops(self, clean):
        internet, rng = clean
        record = run_traceroute(internet, internet.servers[0], internet.clients[0], rng)
        # n hops (incl. destination) -> n links, chained source->dest.
        assert len(record.links) == len(record.hops)
        assert record.links[0][0] == record.server_ip
        assert record.links[-1][1] == record.destination_ip

    def test_non_aliased_internet_always_consistent(self, clean):
        internet, rng = clean
        for server in internet.servers:
            record = run_traceroute(internet, server, internet.clients[1], rng)
            for i in range(len(record.links) - 1):
                assert record.links[i][1] == record.links[i + 1][0]

    def test_complete_record_reaches_destination_ip(self, clean):
        internet, rng = clean
        record = run_traceroute(internet, internet.servers[0], internet.clients[0], rng)
        assert record.reached_destination
        assert record.last_hop_ip == internet.clients[0].ip

    def test_collect_month_covers_all_clients(self, clean):
        internet, rng = clean
        records = collect_month(internet, rng)
        destinations = {r.destination_ip for r in records}
        assert destinations == {c.ip for c in internet.clients}

    def test_collect_month_respects_tests_per_client(self, clean):
        internet, rng = clean
        records = collect_month(internet, rng, tests_per_client=2)
        per_client = {}
        for record in records:
            per_client.setdefault(record.destination_ip, 0)
            per_client[record.destination_ip] += 1
        assert all(count == 2 for count in per_client.values())
