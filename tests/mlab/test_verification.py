"""Topology-verification (Section 3.4 step 4) tests."""

import numpy as np
import pytest

from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.internet import SyntheticInternet
from repro.mlab.topology_construction import TopologyConstructor
from repro.mlab.traceroute import collect_month
from repro.mlab.verification import TopologyVerifier


@pytest.fixture
def setup():
    rng = np.random.default_rng(33)
    internet = SyntheticInternet(
        rng, icmp_block_fraction=0.0, alias_fraction=0.0
    )
    annotations = AnnotationDatabase(internet)
    records = collect_month(internet, rng, tests_per_client=len(internet.servers))
    database = TopologyConstructor(annotations).build(records)
    # Pick any client with a suitable topology.
    for client in internet.clients:
        entries = database.lookup(client.ip, client.asn)
        if entries:
            return internet, annotations, rng, client, entries[0]
    pytest.fail("no suitable topology in the fixture internet")


class TestTopologyVerifier:
    def test_stable_routes_verify(self, setup):
        internet, annotations, rng, client, entry = setup
        verifier = TopologyVerifier(internet, annotations, rng)
        assert verifier.verify(entry, client.name)

    def test_verification_is_repeatable(self, setup):
        internet, annotations, rng, client, entry = setup
        verifier = TopologyVerifier(internet, annotations, rng)
        assert all(verifier.verify(entry, client.name) for _ in range(3))

    def test_route_changes_eventually_invalidate(self, setup):
        internet, annotations, rng, client, entry = setup
        verifier = TopologyVerifier(
            internet, annotations, rng, route_change_probability=1.0
        )
        # With constant churn, some verification within a few tries
        # must fail (the pair may converge elsewhere or share nothing).
        outcomes = [verifier.verify(entry, client.name) for _ in range(10)]
        assert not all(outcomes)

    def test_unknown_server_fails_closed(self, setup):
        internet, annotations, rng, client, entry = setup
        from dataclasses import replace

        broken = replace(entry, server_pair=("ghost-1", "ghost-2"))
        verifier = TopologyVerifier(internet, annotations, rng)
        assert not verifier.verify(broken, client.name)

    def test_rejects_bad_probability(self, setup):
        internet, annotations, rng, _, _ = setup
        with pytest.raises(ValueError):
            TopologyVerifier(internet, annotations, rng, route_change_probability=2.0)
