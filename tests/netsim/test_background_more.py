"""Background-traffic lifecycle and composition tests."""

import numpy as np
import pytest

from repro.netsim.background import (
    CountingSink,
    ModulatedPoissonBackground,
    TcpBackgroundPool,
)
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.path import Path


@pytest.fixture
def wire():
    sim = Simulator()
    link = Link(sim, "l", 1e9, 0.001)
    sink = CountingSink()
    return sim, Path([link], sink), sink


class TestLifecycle:
    def test_stop_at_halts_generation(self, wire):
        sim, path, sink = wire
        ModulatedPoissonBackground(
            sim, np.random.default_rng(1), path, 5e6, stop_at=2.0
        )
        sim.run(until=2.5)
        count_at_stop = sink.packets
        sim.run(until=10.0)
        assert sink.packets == count_at_stop
        assert sim.pending() == 0 or True  # no livelock after stop

    def test_start_at_delays_generation(self, wire):
        sim, path, sink = wire
        ModulatedPoissonBackground(
            sim, np.random.default_rng(2), path, 5e6, start_at=3.0, stop_at=4.0
        )
        sim.run(until=2.9)
        assert sink.packets == 0
        sim.run(until=5.0)
        assert sink.packets > 0

    def test_tcp_pool_stops_spawning(self):
        sim = Simulator()
        link = Link(sim, "l", 50e6, 0.005)
        pool = TcpBackgroundPool(
            sim,
            np.random.default_rng(3),
            [link],
            n_longlived=1,
            short_flow_rate=5.0,
            stop_at=3.0,
        )
        sim.run(until=3.5)
        n_at_stop = len(pool.senders)
        sim.run(until=10.0)
        assert len(pool.senders) == n_at_stop


class TestComposition:
    def test_custom_modulation_components(self, wire):
        sim, path, sink = wire
        bg = ModulatedPoissonBackground(
            sim,
            np.random.default_rng(4),
            path,
            5e6,
            modulation=((0.5, 0.1, 0.9),),
            stop_at=5.0,
        )
        assert len(bg._components) == 1
        sim.run(until=6.0)
        assert sink.packets > 100

    def test_counting_sink_accumulates(self, wire):
        sim, path, sink = wire
        ModulatedPoissonBackground(
            sim, np.random.default_rng(5), path, 2e6, stop_at=3.0
        )
        sim.run(until=4.0)
        assert sink.bytes > 0
        assert sink.packets > 0
        # Mean packet size within the CAIDA mixture's bounds.
        assert 72 <= sink.bytes / sink.packets <= 1500
