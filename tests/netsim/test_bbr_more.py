"""BBR model-internals tests."""

import pytest

from repro.netsim.bbr import PROBE_GAINS, STARTUP_GAIN, BbrSender
from repro.netsim.capture import FlowCapture
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.path import DirectPath, Path
from repro.netsim.tcp import TcpReceiver


def run_bbr(bandwidth=20e6, stop_at=10.0):
    sim = Simulator()
    link = Link(sim, "l", bandwidth, 0.01)
    capture = FlowCapture()
    receiver = TcpReceiver(sim, "f", capture)
    path = Path([link], receiver)
    reverse = DirectPath(sim, 0.01, None)
    sender = BbrSender(sim, "f", path, receiver, reverse, stop_at=stop_at)
    reverse.sink = sender
    sim.run(until=stop_at + 1)
    return sender, capture


class TestBbrModel:
    def test_probe_gain_cycle_shape(self):
        assert len(PROBE_GAINS) == 8
        assert PROBE_GAINS[0] == 1.25
        assert PROBE_GAINS[1] == 0.75
        assert all(g == 1.0 for g in PROBE_GAINS[2:])
        assert STARTUP_GAIN == pytest.approx(2.89)

    def test_clean_link_estimate_tracks_bandwidth(self):
        sender, capture = run_bbr(bandwidth=20e6)
        # The windowed-max estimate should land near the link rate.
        assert sender._btl_bw * 8.0 == pytest.approx(20e6, rel=0.5)
        assert capture.mean_throughput() > 0.6 * 20e6

    def test_startup_exits_on_plateau(self):
        sender, _ = run_bbr()
        assert sender._phase in ("drain", "probe")

    def test_no_loss_on_clean_link(self):
        sender, _ = run_bbr()
        assert sender.retransmission_rate < 0.02

    def test_model_window_is_bdp_scaled(self):
        sender, _ = run_bbr(bandwidth=20e6)
        bdp_packets = 20e6 / 8.0 * 0.02 / 1448
        assert sender.cwnd == pytest.approx(2 * bdp_packets, rel=0.8)
