"""Tests for the Section-7 extensions: BBR sender and per-flow limiter."""

import pytest

from repro.netsim.bbr import BbrSender
from repro.netsim.capture import FlowCapture
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import DATA, Packet
from repro.netsim.path import DirectPath, Path
from repro.netsim.per_flow import PerFlowQdisc
from repro.netsim.qdisc import make_qdisc
from repro.netsim.tcp import TcpReceiver


def run_bbr(limiter_rate, stop_at=20.0):
    sim = Simulator()
    qdisc = make_qdisc("tbf", rate_bps=limiter_rate, rtt_s=0.035, queue_factor=0.5)
    link = Link(sim, "lc", 100e6, 0.005, qdisc)
    capture = FlowCapture()
    receiver = TcpReceiver(sim, "f", capture)
    path = Path([link], receiver)
    reverse = DirectPath(sim, 0.0125, None)
    sender = BbrSender(sim, "f", path, receiver, reverse, dscp=1, stop_at=stop_at)
    reverse.sink = sender
    sim.run(until=stop_at + 1)
    return sender, capture


class TestBbrSender:
    def test_uses_a_good_share_of_the_limiter(self):
        sender, capture = run_bbr(4e6)
        assert capture.mean_throughput() > 0.4 * 4e6

    def test_does_not_exceed_the_limiter(self):
        sender, capture = run_bbr(4e6)
        assert capture.mean_throughput() < 4.4e6

    def test_loss_does_not_collapse_the_window(self):
        sender, _ = run_bbr(4e6)
        # BBR ignores loss: the window stays near 2 x BDP, not 1-2.
        assert sender.retransmission_rate > 0
        assert sender.cwnd >= 4.0

    def test_reaches_probe_phase(self):
        sender, _ = run_bbr(8e6)
        assert sender._phase == "probe"
        assert sender._btl_bw > 0


def flow_packet(flow, size=1500, dscp=1):
    return Packet(flow, DATA, 0, size, dscp=dscp)


class TestPerFlowQdisc:
    def test_each_flow_gets_its_own_bucket(self):
        qdisc = PerFlowQdisc(8e6, 10_000, 50_000)
        qdisc.enqueue(flow_packet("a"), 0.0)
        qdisc.enqueue(flow_packet("b"), 0.0)
        assert qdisc.n_flows == 2

    def test_shared_flow_id_shares_a_bucket(self):
        qdisc = PerFlowQdisc(8e6, 10_000, 50_000)
        qdisc.enqueue(flow_packet("merged"), 0.0)
        qdisc.enqueue(flow_packet("merged"), 0.0)
        assert qdisc.n_flows == 1

    def test_unmarked_traffic_goes_to_fifo(self):
        qdisc = PerFlowQdisc(8e6, 10_000, 50_000)
        qdisc.enqueue(flow_packet("a", dscp=0), 0.0)
        assert qdisc.n_flows == 0
        assert len(qdisc.fifo) == 1

    def test_flows_isolated_token_wise(self):
        # Flow "a" drains its bucket; flow "b" still has a full one.
        qdisc = PerFlowQdisc(8000.0, 1500, 50_000)
        qdisc.enqueue(flow_packet("a"), 0.0)
        got, _ = qdisc.dequeue(0.0)
        assert got is not None and got.flow_id == "a"
        qdisc.enqueue(flow_packet("a"), 0.0)
        qdisc.enqueue(flow_packet("b"), 0.0)
        got, _ = qdisc.dequeue(0.0)
        assert got is not None and got.flow_id == "b"
        got, wake = qdisc.dequeue(0.0)
        assert got is None and wake is not None

    def test_round_robin_across_flows(self):
        qdisc = PerFlowQdisc(80e6, 100_000, 500_000)
        for i in range(2):
            qdisc.enqueue(flow_packet("a"), 0.0)
            qdisc.enqueue(flow_packet("b"), 0.0)
        order = [qdisc.dequeue(0.0)[0].flow_id for _ in range(4)]
        assert order in (["a", "b", "a", "b"], ["b", "a", "b", "a"])

    def test_drop_accounting(self):
        qdisc = PerFlowQdisc(8000.0, 1500, 1500)
        qdisc.enqueue(flow_packet("a"), 0.0)
        qdisc.enqueue(flow_packet("a"), 0.0)  # queue full -> drop
        assert qdisc.drops == 1

    def test_factory_applies_burst_rule(self):
        qdisc = make_qdisc("perflow", rate_bps=8e6, rtt_s=0.05)
        qdisc.enqueue(flow_packet("x"), 0.0)
        bucket = qdisc._flows["x"]
        assert bucket.burst_bytes == int(8e6 * 0.05 / 8.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PerFlowQdisc(0, 1000, 1000)
