"""Cross-module determinism: identical seeds -> identical experiments."""

import numpy as np

from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.wehe.apps import make_trace


def run_fingerprint(seed):
    config = ScenarioConfig(app="zoom", limiter="common", duration=12.0, seed=seed)
    service = NetsimReplayService(config)
    trace = make_trace("zoom", 12.0, service._trace_rng)
    result = service.simultaneous_replay(trace)
    return (
        result.mean_throughput_1,
        result.mean_throughput_2,
        result.measurements_1.packets_lost,
        result.measurements_2.packets_lost,
        tuple(np.round(result.samples_1[:10], 3)),
    )


class TestDeterminism:
    def test_same_seed_identical_everything(self):
        assert run_fingerprint(5) == run_fingerprint(5)

    def test_different_seeds_differ(self):
        assert run_fingerprint(5) != run_fingerprint(6)

    def test_trace_generation_deterministic(self):
        a = make_trace("netflix", 10.0, np.random.default_rng(3))
        b = make_trace("netflix", 10.0, np.random.default_rng(3))
        assert a.schedule == b.schedule
