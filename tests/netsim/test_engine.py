"""Event-engine tests: ordering, cancellation, determinism."""

import pytest

from repro.netsim.engine import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(5.0, seen.append, 5)
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run()
        assert seen == [1, 5]

    def test_run_until_sets_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule_cancellable(1.0, seen.append, "x")
        handle.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule_cancellable(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_plain_schedule_is_fire_and_forget(self):
        sim = Simulator()
        assert sim.schedule(1.0, lambda: None) is None

    def test_pending_excludes_cancelled_events(self):
        sim = Simulator()
        keep = sim.schedule_cancellable(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        keep.cancel()
        assert sim.pending() == 1
        keep.cancel()  # idempotent: must not double-count
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0

    def test_events_processed_counts_only_live_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule_cancellable(2.0, lambda: None).cancel()
        sim.run()
        assert sim.events_processed == 1

    def test_stop_halts_processing(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, seen.append, 2)
        sim.run()
        assert seen == [1]


class TestDeterminism:
    def test_same_schedule_same_trace(self):
        def run_once():
            sim = Simulator()
            trace = []
            for i in range(100):
                sim.schedule(((i * 7919) % 100) / 10.0, trace.append, i)
            sim.run()
            return trace

        assert run_once() == run_once()
