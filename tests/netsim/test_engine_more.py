"""Engine stress and wake-handling tests."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import DATA, Packet
from repro.netsim.path import Path
from repro.netsim.token_bucket import TokenBucketFilter, DualClassQdisc


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.times = []

    def receive(self, packet):
        self.times.append(self.sim.now)


class TestTbfLinkInterplay:
    def test_starved_tbf_wakes_and_drains(self):
        """A link whose TBF is token-starved must wake itself up and
        eventually drain everything at the token rate."""
        sim = Simulator()
        tbf = TokenBucketFilter(80_000.0, 3000, 100_000)  # 10 kB/s
        link = Link(sim, "l", 100e6, 0.0, DualClassQdisc(tbf))
        sink = Sink(sim)
        path = Path([link], sink)
        for i in range(10):
            packet = Packet("f", DATA, i, 1000, dscp=1)
            path.inject(packet)
        sim.run(until=10.0)
        assert len(sink.times) == 10
        # The first 3 fit the initial bucket; the rest drain at 10 kB/s.
        assert sink.times[-1] == pytest.approx(0.7, abs=0.05)

    def test_interleaved_fifo_traffic_keeps_flowing(self):
        sim = Simulator()
        tbf = TokenBucketFilter(8_000.0, 1500, 100_000)  # 1 kB/s: slow
        link = Link(sim, "l", 100e6, 0.0, DualClassQdisc(tbf))
        sink = Sink(sim)
        path = Path([link], sink)
        path.inject(Packet("m", DATA, 0, 1500, dscp=1))
        path.inject(Packet("m", DATA, 1, 1500, dscp=1))  # starved
        for i in range(5):
            path.inject(Packet("u", DATA, i, 1500, dscp=0))
        sim.run(until=0.5)
        # All unmarked packets got through while the TBF waits.
        assert len(sink.times) >= 6

    def test_no_event_leak_after_drain(self):
        sim = Simulator()
        tbf = TokenBucketFilter(80_000.0, 3000, 100_000)
        link = Link(sim, "l", 100e6, 0.0, DualClassQdisc(tbf))
        path = Path([link], Sink(sim))
        path.inject(Packet("f", DATA, 0, 1000, dscp=1))
        sim.run()
        assert sim.pending() == 0


class TestEngineScale:
    def test_hundred_thousand_events(self):
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 100_000:
                sim.schedule(1e-5, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert counter[0] == 100_000
        assert sim.now == pytest.approx(1.0, rel=0.01)
