"""Hybrid fluid-background model: conservation, calibration, verdicts.

Three layers of guarantees, mirroring DESIGN.md "Hybrid fidelity
model":

- *mechanics*: every fluid queue conserves bytes exactly
  (offered == served + dropped + virtual backlog) and interleaves the
  virtual background with real packets in FIFO order;
- *calibration*: the fluid rate process is drawn from the same seeded
  AR(1) machinery as the packet generators, so byte totals match
  packet mode within sampling noise and trajectories are
  bit-deterministic per seed;
- *equivalence*: a pinned gate cell must produce identical detection
  verdicts in both fidelities while simulating >= 5x fewer events (the
  full grid runs in ``repro.perf`` and CI's fidelity gate).
"""

import numpy as np
import pytest

from repro.experiments.runner import run_detection_experiment
from repro.experiments.scenarios import ScenarioConfig
from repro.netsim.background import ModulatedPoissonBackground
from repro.netsim.engine import Simulator, events_processed_total
from repro.netsim.fluid import (
    FluidDropTailQueue,
    FluidPoissonBackground,
    FluidTcpBackground,
    FluidTokenBucketFilter,
    TCP_WIRE_OVERHEAD,
    short_flow_pulse,
)
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.store import record_line


def _packet(size=1000, flow="fg", seq=0, dscp=0):
    return Packet(flow, "data", seq, size, dscp=dscp)


def conservation_gap(stats):
    total = (
        stats["bg_bytes_served"]
        + stats["bg_bytes_dropped"]
        + stats["virtual_backlog_bytes"]
    )
    return abs(stats["bg_bytes_offered"] - total)


class TestFluidDropTailQueue:
    def test_conservation_exact(self):
        q = FluidDropTailQueue(capacity_bytes=50_000, service_bps=8e6)
        q.set_source_rate(0.0, "src", 4e6, 2e6)
        # Interleave foreground packets with rate changes and idle gaps.
        t = 0.0
        for step in range(200):
            t += 0.003
            if step % 7 == 0:
                q.set_source_rate(t, "src", 3e6 * (step % 3), 1e6)
            if step % 3 == 0:
                q.enqueue(_packet(seq=step), t)
            q.dequeue(t)
        q._advance(t + 1.0)
        assert conservation_gap(q.fluid_stats()) < 1e-6

    def test_underload_background_passes_through(self):
        q = FluidDropTailQueue(capacity_bytes=50_000, service_bps=10e6)
        q.set_source_rate(0.0, "src", 0.0, 4e6)  # 40% load
        q._advance(10.0)
        stats = q.fluid_stats()
        assert stats["bg_bytes_offered"] == pytest.approx(4e6 / 8 * 10)
        assert stats["bg_bytes_dropped"] == 0.0
        assert stats["virtual_backlog_bytes"] < 1e-6
        assert stats["bg_bytes_served"] == pytest.approx(stats["bg_bytes_offered"])

    def test_overload_drops_excess(self):
        q = FluidDropTailQueue(capacity_bytes=10_000, service_bps=8e6)
        q.set_source_rate(0.0, "src", 0.0, 16e6)  # 2x the service rate
        q._advance(10.0)
        stats = q.fluid_stats()
        # Service drains 1e6 B/s of the 2e6 B/s offered; the rest fills
        # the 10 kB virtual queue once and then drops.
        assert stats["bg_bytes_served"] == pytest.approx(1e6 * 10, rel=0.01)
        assert stats["bg_bytes_dropped"] == pytest.approx(1e6 * 10, rel=0.01)
        assert stats["virtual_backlog_bytes"] == pytest.approx(10_000, rel=0.01)

    def test_head_of_line_defers_behind_virtual_bytes(self):
        q = FluidDropTailQueue(capacity_bytes=100_000, service_bps=8e6)
        q.set_source_rate(0.0, "src", 0.0, 16e6)
        q._advance(0.05)  # builds virtual backlog
        assert q.virtual_backlog_bytes > 0
        assert q.enqueue(_packet(), 0.05)
        packet, wake = q.dequeue(0.05)
        assert packet is None
        ahead = q.virtual_backlog_bytes
        assert wake == pytest.approx(0.05 + ahead * 8.0 / 8e6, abs=1e-6)
        assert q.fluid_deferrals == 1
        # Once the backlog ahead has drained, the head transmits.
        packet, _ = q.dequeue(wake)
        assert packet is not None

    def test_virtual_occupancy_drops_foreground(self):
        q = FluidDropTailQueue(capacity_bytes=5_000, service_bps=8e6)
        q.set_source_rate(0.0, "src", 0.0, 80e6)
        q._advance(0.1)  # virtual backlog pinned at capacity
        assert not q.enqueue(_packet(size=1000), 0.1)
        assert q.drops == 1

    def test_fifo_marks_new_arrivals_behind_real_packet(self):
        q = FluidDropTailQueue(capacity_bytes=100_000, service_bps=8e6)
        assert q.enqueue(_packet(), 0.0)
        # Background arriving after the packet must not delay it.
        q.set_source_rate(0.0, "src", 0.0, 16e6)
        packet, _ = q.dequeue(0.01)
        assert packet is not None


class TestFluidTokenBucketFilter:
    def test_conservation_exact(self):
        tbf = FluidTokenBucketFilter(2e6, 10_000, 30_000)
        tbf.set_fluid_rate(0.0, "src", 1.5e6)
        t = 0.0
        for step in range(200):
            t += 0.004
            if step % 11 == 0:
                tbf.set_fluid_rate(t, "src", 0.5e6 * (step % 5))
            if step % 4 == 0:
                tbf.enqueue(_packet(seq=step, dscp=1), t)
            tbf.dequeue(t)
        tbf._advance(t + 1.0)
        assert conservation_gap(tbf.fluid_stats()) < 1e-6

    def test_fluid_depletes_tokens(self):
        tbf = FluidTokenBucketFilter(2e6, 10_000, 30_000)
        assert tbf.tokens(0.0) == 10_000
        tbf.set_fluid_rate(0.0, "src", 2e6)  # exactly the refill rate
        tbf._advance(1.0)
        # Virtual arrivals consume the whole refill; the burst stays.
        assert tbf.tokens(1.0) == pytest.approx(10_000, rel=0.01)
        tbf.set_fluid_rate(1.0, "src", 4e6)  # 2x: now tokens drain
        tbf._advance(1.04)
        assert tbf.tokens(1.04) < 10_000

    def test_foreground_defers_until_tokens_and_backlog(self):
        tbf = FluidTokenBucketFilter(2e6, 3_000, 300_000)
        tbf.set_fluid_rate(0.0, "src", 8e6)
        tbf._advance(0.1)  # tokens gone, virtual queue filling
        assert tbf.enqueue(_packet(size=1000, dscp=1), 0.1)
        packet, wake = tbf.dequeue(0.1)
        assert packet is None
        assert wake > 0.1
        packet, wake2 = tbf.dequeue(wake)
        # Fluid keeps arriving at 4x the rate, so the head may need
        # more than one deferral; it must always make progress.
        assert packet is not None or wake2 > wake

    def test_overlimit_drops_foreground(self):
        tbf = FluidTokenBucketFilter(2e6, 3_000, 8_000)
        tbf.set_fluid_rate(0.0, "src", 80e6)
        tbf._advance(0.1)
        assert not tbf.enqueue(_packet(size=1000, dscp=1), 0.1)
        assert tbf.drops == 1


class _NullQdisc:
    """Rate sink standing in for a downstream hop in source tests."""

    def __init__(self):
        self.rates = []

    def set_source_rate(self, now, source, marked, unmarked, n_flows=1):
        self.rates.append((now, marked, unmarked))


class _FakeLink:
    def __init__(self, bandwidth_bps):
        self.qdisc = _NullQdisc()
        self.bandwidth_bps = bandwidth_bps


@pytest.mark.parametrize("seed", range(5))
def test_fluid_byte_totals_match_packet_mode(seed):
    """The fluid twin offers the same bytes the packet generator sends.

    With the AR(1) modulation flattened (sigma = 0) both processes run
    at the configured mean rate and the only residual is the packet
    process's sampling noise (Poisson gaps, size mixture) and the fluid
    dither -- a couple of percent over a 20 s window.  (With modulation
    on, the two consume the shared RNG differently -- per-packet draws
    vs dither draws -- so individual trajectories diverge by design;
    only the distribution matches, which the verdict gate checks.)
    """
    mean_rate = 5e6
    duration = 20.0
    flat = ((1.0, 0.0, 0.0),)

    sim_p = Simulator()
    link = Link(sim_p, "wide", 1e9, 0.001)
    from repro.netsim.background import CountingSink
    from repro.netsim.path import Path

    sink = CountingSink()
    ModulatedPoissonBackground(
        sim_p,
        np.random.default_rng(seed),
        Path([link], sink),
        mean_rate,
        modulation=flat,
    )
    sim_p.run(until=duration)
    packet_bytes = sink.bytes

    sim_f = Simulator()
    fluid_bg = FluidPoissonBackground(
        sim_f,
        np.random.default_rng(seed),
        [_FakeLink(1e9)],
        mean_rate,
        modulation=flat,
    )
    sim_f.run(until=duration)
    fluid_bg._push(0.0, 0.0)  # settle the byte integral at `now`
    fluid_bytes = fluid_bg.bytes_offered

    assert fluid_bytes == pytest.approx(packet_bytes, rel=0.05)


def test_fluid_rate_trajectory_deterministic_per_seed():
    def offered(seed):
        sim = Simulator()
        bg = FluidPoissonBackground(
            sim, np.random.default_rng(seed), [_FakeLink(1e9)], 5e6
        )
        sim.run(until=10.0)
        bg._push(0.0, 0.0)
        return bg.bytes_offered, bg.sim.now

    assert offered(7) == offered(7)
    assert offered(7) != offered(8)


def test_fluid_tcp_longlived_rate_is_exact():
    sim = Simulator()
    bg = FluidTcpBackground(
        sim,
        np.random.default_rng(3),
        [_FakeLink(1e9)],
        n_longlived=2,
        longlived_rate_bps=2e6,
        short_flow_rate=0.0,
    )
    sim.run(until=10.0)
    bg._emit()  # settle the byte integral at `now`; rates unchanged
    # Two app-paced flows at 2 Mb/s each, plus TCP wire overhead.
    expected = 2 * 2e6 * TCP_WIRE_OVERHEAD / 8.0 * 10.0
    assert bg.bytes_offered == pytest.approx(expected, rel=1e-6)


def test_fluid_tcp_short_flows_deterministic_per_seed():
    def spawned(seed):
        sim = Simulator()
        bg = FluidTcpBackground(
            sim,
            np.random.default_rng(seed),
            [_FakeLink(1e9)],
            short_flow_rate=2.0,
        )
        sim.run(until=10.0)
        bg._emit()
        return bg.flows_spawned, bg.bytes_offered

    assert spawned(4) == spawned(4)
    assert spawned(4) != spawned(5)


def test_short_flow_pulse_conserves_bytes():
    for size, rtt in ((5_000, 0.02), (200_000, 0.05), (1_000_000, 0.1)):
        rate, duration = short_flow_pulse(size, rtt)
        assert rate * duration / 8.0 == pytest.approx(
            size * TCP_WIRE_OVERHEAD
        )
        assert duration >= 1e-3


def test_multi_hop_rate_clipped_at_upstream_bandwidth():
    sim = Simulator()
    narrow, wide = _FakeLink(2e6), _FakeLink(1e9)
    FluidPoissonBackground(
        sim, np.random.default_rng(0), [narrow, wide], 8e6, dither_period=0.0
    )
    sim.run(until=1.0)
    # The first hop sees the full offered rate; the second at most the
    # first hop's bandwidth.
    assert any(m + u > 2e6 for _, m, u in narrow.qdisc.rates)
    assert all(m + u <= 2e6 + 1e-6 for _, m, u in wide.qdisc.rates)


GATE_CELL = ScenarioConfig(
    app="netflix", limiter="common", rtt_2=0.015, duration=60.0, seed=1
)


class TestHybridEquivalence:
    """One pinned gate cell; the full grid runs in repro.perf and CI."""

    def test_verdicts_match_with_5x_fewer_events(self):
        before = events_processed_total()
        packet = run_detection_experiment(GATE_CELL)
        packet_events = events_processed_total() - before
        hybrid = run_detection_experiment(GATE_CELL.with_(fidelity="hybrid"))
        hybrid_events = events_processed_total() - before - packet_events
        assert hybrid.verdicts == packet.verdicts
        assert packet_events >= 5 * hybrid_events

    def test_hybrid_byte_identical_across_runs(self):
        config = GATE_CELL.with_(duration=8.0, fidelity="hybrid")
        first = run_detection_experiment(config)
        second = run_detection_experiment(config)
        assert record_line(first) == record_line(second)

    def test_fidelity_recorded_in_config(self):
        record = run_detection_experiment(
            GATE_CELL.with_(duration=5.0, fidelity="hybrid")
        )
        assert record.config.fidelity == "hybrid"
