"""Link and path tests: serialization, delay, forwarding, drops."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import DATA, Packet
from repro.netsim.path import DirectPath, Path
from repro.netsim.queues import DropTailQueue


class Sink:
    def __init__(self, sim=None):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        when = self.sim.now if self.sim else None
        self.arrivals.append((when, packet))


def make_packet(size=1500, flow="f", seq=0):
    return Packet(flow, DATA, seq, size)


class TestLink:
    def test_serialization_plus_propagation_delay(self):
        sim = Simulator()
        link = Link(sim, "l", 8e6, 0.010)  # 1 MB/s, 10 ms
        sink = Sink(sim)
        path = Path([link], sink)
        path.inject(make_packet(size=1000))
        sim.run()
        # 1000 B at 1 MB/s = 1 ms serialization + 10 ms propagation.
        assert sink.arrivals[0][0] == pytest.approx(0.011)

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        link = Link(sim, "l", 8e6, 0.0)
        sink = Sink(sim)
        path = Path([link], sink)
        for i in range(3):
            path.inject(make_packet(size=1000, seq=i))
        sim.run()
        times = [t for t, _ in sink.arrivals]
        assert times == pytest.approx([0.001, 0.002, 0.003])

    def test_queue_overflow_drops_silently(self):
        sim = Simulator()
        link = Link(sim, "l", 8e3, 0.0, DropTailQueue(3000))  # slow link
        sink = Sink(sim)
        path = Path([link], sink)
        for i in range(10):
            path.inject(make_packet(size=1500, seq=i))
        sim.run(until=100.0)
        assert link.drops > 0
        assert len(sink.arrivals) < 10

    def test_byte_counters(self):
        sim = Simulator()
        link = Link(sim, "l", 8e6, 0.0)
        path = Path([link], Sink(sim))
        path.inject(make_packet(size=700))
        sim.run()
        assert link.bytes_sent == 700
        assert link.packets_sent == 1

    def test_utilization(self):
        sim = Simulator()
        link = Link(sim, "l", 8e6, 0.0)
        path = Path([link], Sink(sim))
        path.inject(make_packet(size=1000))
        sim.run()
        assert link.utilization(0.01) == pytest.approx(0.1)

    def test_rejects_bad_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "l", 0, 0.0)
        with pytest.raises(ValueError):
            Link(sim, "l", 1e6, -1.0)


class TestPath:
    def test_multi_hop_traversal(self):
        sim = Simulator()
        l1 = Link(sim, "l1", 8e6, 0.005)
        l2 = Link(sim, "l2", 8e6, 0.005)
        sink = Sink(sim)
        path = Path([l1, l2], sink)
        path.inject(make_packet(size=1000))
        sim.run()
        # two serializations (1 ms each) + two propagations (5 ms each)
        assert sink.arrivals[0][0] == pytest.approx(0.012)

    def test_propagation_delay_property(self):
        sim = Simulator()
        l1 = Link(sim, "l1", 8e6, 0.003)
        l2 = Link(sim, "l2", 8e6, 0.007)
        path = Path([l1, l2], Sink(sim))
        assert path.propagation_delay == pytest.approx(0.010)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path([], Sink())

    def test_shared_link_between_paths(self):
        sim = Simulator()
        shared = Link(sim, "shared", 8e6, 0.0)
        sink_a, sink_b = Sink(sim), Sink(sim)
        path_a = Path([shared], sink_a)
        path_b = Path([shared], sink_b)
        path_a.inject(make_packet(flow="a"))
        path_b.inject(make_packet(flow="b"))
        sim.run()
        assert len(sink_a.arrivals) == 1
        assert len(sink_b.arrivals) == 1


class TestDirectPath:
    def test_fixed_delay(self):
        sim = Simulator()
        sink = Sink(sim)
        path = DirectPath(sim, 0.020, sink)
        path.inject(make_packet())
        sim.run()
        assert sink.arrivals[0][0] == pytest.approx(0.020)

    def test_jitter_added(self):
        sim = Simulator()
        sink = Sink(sim)
        path = DirectPath(sim, 0.020, sink, jitter=lambda: 0.005)
        path.inject(make_packet())
        sim.run()
        assert sink.arrivals[0][0] == pytest.approx(0.025)
