"""MultipathLink: ECMP hashing, flowlet switching, degenerate bundles."""

import numpy as np
import pytest

from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.multipath import (
    EPHEMERAL_PORT_HI,
    EPHEMERAL_PORT_LO,
    MultipathLink,
    ecmp_hash,
    five_tuple,
    five_tuple_key,
    shaped_member_subset,
)
from repro.netsim.packet import DATA, Packet
from repro.netsim.path import Path
from repro.netsim.queues import DropTailQueue
from repro.wehe.apps import make_trace


class Sink:
    def __init__(self, sim=None):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        when = self.sim.now if self.sim else None
        self.arrivals.append((when, packet))


def make_bundle(sim, n, bandwidth=8e6, delay=0.0, **kwargs):
    qdiscs = [DropTailQueue(10_000_000) for _ in range(n)]
    return MultipathLink(sim, "lc", bandwidth, delay, qdiscs, **kwargs)


class TestEcmpHash:
    def test_pinned_values_machine_independent(self):
        # Frozen literals: the assignment of flows to members must be
        # identical on every machine, process, and restart.
        assert ecmp_hash("a") == 6556232348807121594
        assert ecmp_hash("a", seed=7) == 5879294703052079088
        assert ecmp_hash("a", seed=7, epoch=1) == 14093283341565574170

    def test_seed_and_epoch_redraw(self):
        assert ecmp_hash("k", seed=1) != ecmp_hash("k", seed=2)
        assert ecmp_hash("k", epoch=0) != ecmp_hash("k", epoch=1)

    def test_not_linear_in_the_key(self):
        # CRC-32 is GF(2)-linear: hash(a) ^ hash(b) would be constant
        # across seeds, forcing two fixed flows to always co-hash or
        # always split on power-of-two bundles.  SHA-256 must not.
        diffs = {
            (ecmp_hash("flow-1", seed=s) ^ ecmp_hash("flow-2", seed=s))
            for s in range(8)
        }
        assert len(diffs) == 8

    def test_parity_varies_across_seeds(self):
        parities = {ecmp_hash("flow-1", seed=s) % 2 for s in range(32)}
        assert parities == {0, 1}

    def test_five_tuple_pinned(self):
        tup = five_tuple("replay-zoom-1-orig")
        assert tup == ("ip", "replay-zoom-1-orig", 53393, "client", 443)
        assert (
            five_tuple_key(tup) == "ip:replay-zoom-1-orig:53393:client:443"
        )

    def test_five_tuple_derived_port_in_ephemeral_range(self):
        for flow in ("a", "bg-tcp-1-1", "replay-netflix-2-inv"):
            sport = five_tuple(flow)[2]
            assert EPHEMERAL_PORT_LO <= sport <= EPHEMERAL_PORT_HI

    def test_explicit_port_changes_the_key(self):
        assert five_tuple("f", sport=50000) != five_tuple("f", sport=50001)


class TestShapedMemberSubset:
    def test_pinned_draws(self):
        assert shaped_member_subset(4, 2, 0) == (1, 2)
        assert shaped_member_subset(8, 3, 5) == (4, 5, 6)

    def test_full_subset_is_identity(self):
        assert shaped_member_subset(3, 3, 9) == (0, 1, 2)
        assert shaped_member_subset(3, 7, 9) == (0, 1, 2)

    def test_subset_size_and_range(self):
        for seed in range(10):
            subset = shaped_member_subset(5, 2, seed)
            assert len(subset) == 2
            assert all(0 <= member < 5 for member in subset)
            assert subset == tuple(sorted(subset))


class TestMultipathLink:
    def test_routing_is_sticky_per_flow(self):
        sim = Simulator()
        bundle = make_bundle(sim, 4, seed=3)
        sink = Sink(sim)
        path = Path([bundle], sink)
        for flow in ("a", "b", "c"):
            for seq in range(5):
                path.inject(Packet(flow, DATA, seq, 1000))
        sim.run()
        assert len(sink.arrivals) == 15
        # Each flow used exactly one member.
        for flow in ("a", "b", "c"):
            assert bundle.current_assignment(flow) is not None
        total = sum(member.packets_sent for member in bundle.members)
        assert total == 15 == bundle.packets_offered

    def test_register_flow_overrides_derived_tuple(self):
        sim = Simulator()
        bundle = make_bundle(sim, 8, seed=1)
        before = bundle.predicted_assignment("f")
        moved = False
        for sport in range(50000, 50100):
            bundle.register_flow("f", sport)
            if bundle.predicted_assignment("f") != before:
                moved = True
                break
        assert moved  # some port re-draw must re-hash an 8-member bundle

    def test_fail_member_rehashes_flows(self):
        sim = Simulator()
        bundle = make_bundle(sim, 2, seed=0)
        sink = Sink(sim)
        path = Path([bundle], sink)
        path.inject(Packet("f", DATA, 0, 1000))
        sim.run()
        victim = bundle.current_assignment("f")
        bundle.fail_member(victim)
        path.inject(Packet("f", DATA, 1, 1000))
        sim.run()
        assert bundle.current_assignment("f") != victim
        assert bundle.rehashes == 1

    def test_fail_last_member_refused(self):
        sim = Simulator()
        bundle = make_bundle(sim, 2)
        bundle.fail_member(0)
        with pytest.raises(ValueError):
            bundle.fail_member(1)
        with pytest.raises(ValueError):
            bundle.fail_member(0)  # already down

    def test_flowlet_gap_switches_members(self):
        sim = Simulator()
        bundle = make_bundle(sim, 2, seed=2, flowlet_gap_s=0.05)
        sink = Sink(sim)
        path = Path([bundle], sink)

        def burst(at, base_seq):
            for i in range(3):
                sim.schedule(
                    at, path.inject, Packet("f", DATA, base_seq + i, 500)
                )

        for n in range(40):  # pauses of 0.1 s >> gap of 0.05 s
            burst(n * 0.1, n * 10)
        sim.run()
        assert bundle.flowlet_switches > 0
        assert bundle.flow_switches["f"] == bundle.flowlet_switches
        # Both members ended up carrying traffic.
        assert all(m.packets_sent > 0 for m in bundle.members)

    def test_no_flowlet_switching_when_gap_disabled(self):
        sim = Simulator()
        bundle = make_bundle(sim, 2, seed=2)
        sink = Sink(sim)
        path = Path([bundle], sink)
        for n in range(40):
            sim.schedule(n * 0.1, path.inject, Packet("f", DATA, n, 500))
        sim.run()
        assert bundle.flowlet_switches == 0

    def test_aggregate_statistics_sum_members(self):
        sim = Simulator()
        bundle = make_bundle(sim, 3, seed=1)
        sink = Sink(sim)
        path = Path([bundle], sink)
        for flow in ("a", "b", "c", "d"):
            for seq in range(10):
                path.inject(Packet(flow, DATA, seq, 1000))
        sim.run()
        assert bundle.packets_sent == sum(
            m.packets_sent for m in bundle.members
        )
        assert bundle.bytes_sent == sum(m.bytes_sent for m in bundle.members)
        assert bundle.drops == sum(m.drops for m in bundle.members)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MultipathLink(sim, "lc", 8e6, 0.0, [])
        with pytest.raises(ValueError):
            make_bundle(sim, 2, flowlet_gap_s=0.0)

    def test_assignment_history_records_first_and_switches(self):
        # The bench's co-location ground truth integrates over this
        # timeline, so pin its shape: one entry at first assignment,
        # one per flowlet switch, timestamps monotone, members match
        # the live assignment at each point.
        sim = Simulator()
        bundle = make_bundle(sim, 2, seed=2, flowlet_gap_s=0.05)
        sink = Sink(sim)
        path = Path([bundle], sink)
        for n in range(40):  # pauses of 0.1 s >> gap of 0.05 s
            sim.schedule(n * 0.1, path.inject, Packet("f", DATA, n, 500))
        sim.run()
        history = bundle.assignment_history["f"]
        assert len(history) == 1 + bundle.flowlet_switches
        times = [when for when, _ in history]
        assert times == sorted(times)
        # Consecutive entries always change member (no no-op records).
        members = [member for _, member in history]
        assert all(a != b for a, b in zip(members, members[1:]))
        assert members[-1] == bundle.current_assignment("f")

    def test_assignment_history_sticky_flow_single_entry(self):
        sim = Simulator()
        bundle = make_bundle(sim, 4, seed=3)
        sink = Sink(sim)
        path = Path([bundle], sink)
        for seq in range(10):
            path.inject(Packet("f", DATA, seq, 1000))
        sim.run()
        history = bundle.assignment_history["f"]
        assert len(history) == 1
        assert history[0][1] == bundle.current_assignment("f")


class TestDegenerateBundle:
    """A 1-member bundle must be byte-identical to a plain Link."""

    def test_single_member_arrivals_identical(self):
        def run(multi):
            sim = Simulator()
            if multi:
                link = make_bundle(sim, 1, bandwidth=8e6, delay=0.01)
            else:
                link = Link(
                    sim, "lc", 8e6, 0.01, DropTailQueue(10_000_000)
                )
            sink = Sink(sim)
            path = Path([link], sink)
            for flow in ("a", "b"):
                for seq in range(20):
                    path.inject(Packet(flow, DATA, seq, 1200))
            sim.run()
            return [(t, p.flow_id, p.seq) for t, p in sink.arrivals]

        assert run(True) == run(False)

    def test_single_member_replay_byte_identical(self):
        def run(**knobs):
            config = ScenarioConfig(
                app="zoom", limiter="common", duration=4.0, seed=0, **knobs
            )
            service = NetsimReplayService(config)
            trace = make_trace("zoom", 4.0, service._trace_rng)
            result = service.simultaneous_replay(trace)
            return result

        plain = run()
        degenerate = run(multipath=1)
        assert np.array_equal(plain.samples_1, degenerate.samples_1)
        assert np.array_equal(plain.samples_2, degenerate.samples_2)
        assert np.array_equal(
            plain.measurements_1.loss_times,
            degenerate.measurements_1.loss_times,
        )
        assert np.array_equal(
            plain.measurements_2.send_times,
            degenerate.measurements_2.send_times,
        )


class TestTopologyIntegration:
    def test_multipath_spreads_replays_and_background(self):
        config = ScenarioConfig(
            app="zoom", limiter="common", duration=4.0, seed=0, multipath=2
        )
        service = NetsimReplayService(config)
        trace = make_trace("zoom", 4.0, service._trace_rng)
        service.simultaneous_replay(trace)
        link = service.last_environment.topology.link_c
        assert len(link.members) == 2
        assert all(m.packets_sent > 0 for m in link.members)
        assert link.packets_offered == sum(
            m.packets_offered for m in link.members
        )

    def test_shaped_subset_leaves_plain_members(self):
        config = ScenarioConfig(
            app="zoom",
            limiter="common",
            duration=4.0,
            seed=0,
            multipath=4,
            multipath_shaped=2,
        )
        service = NetsimReplayService(config)
        trace = make_trace("zoom", 4.0, service._trace_rng)
        service.simultaneous_replay(trace)
        topology = service.last_environment.topology
        assert len(topology.limiter_qdiscs) == 2

    def test_multipath_requires_packet_fidelity(self):
        with pytest.raises(ValueError):
            ScenarioConfig(app="zoom", multipath=2, fidelity="fluid")
        with pytest.raises(ValueError):
            ScenarioConfig(app="zoom", flowlet_gap_s=0.01)
