"""Packet model tests."""

import pytest

from repro.netsim.packet import ACK, ACK_BYTES, DATA, HEADER_BYTES, Packet


class TestPacket:
    def test_defaults(self):
        packet = Packet("f", DATA, 0, 1500)
        assert packet.dscp == 0
        assert not packet.is_retx
        assert packet.sack is None
        assert packet.hop == 0

    def test_repr_is_informative(self):
        packet = Packet("flow-9", DATA, 1448, 1500, dscp=1)
        text = repr(packet)
        assert "flow-9" in text
        assert "DATA" in text
        assert "dscp=1" in text

    def test_ack_repr(self):
        assert "ACK" in repr(Packet("f", ACK, 0, ACK_BYTES))

    def test_slots_prevent_arbitrary_attributes(self):
        packet = Packet("f", DATA, 0, 100)
        with pytest.raises(AttributeError):
            packet.color = "blue"

    def test_header_constants_sane(self):
        assert HEADER_BYTES > 0
        assert ACK_BYTES > 0
