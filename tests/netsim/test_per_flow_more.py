"""Per-flow qdisc behaviour on a live link."""

from repro.netsim.capture import FlowCapture
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.path import Path
from repro.netsim.qdisc import make_qdisc
from repro.netsim.udp import UdpReceiver, UdpSender

def cbr_schedule(rate_bps, size, duration):
    gap = size * 8.0 / rate_bps
    return [(i * gap, size) for i in range(int(duration / gap))]


class TestPerFlowOnLink:
    def test_each_flow_individually_throttled(self):
        sim = Simulator()
        qdisc = make_qdisc("perflow", rate_bps=1e6, rtt_s=0.03)  # 1 Mb/s per flow
        link = Link(sim, "l", 100e6, 0.005, qdisc)
        captures = {}
        for flow in ("a", "b"):
            receiver = UdpReceiver(sim, flow, FlowCapture())
            captures[flow] = receiver
            UdpSender(
                sim,
                flow,
                Path([link], receiver),
                cbr_schedule(2e6, 1000, 10.0),  # 2 Mb/s offered
                dscp=1,
            )
        sim.run(until=12.0)
        for flow, receiver in captures.items():
            achieved = receiver.bytes_received * 8.0 / 10.0
            # Each flow is pinned near 1 Mb/s, not sharing 2 Mb/s.
            assert achieved < 1.3e6, flow
            assert achieved > 0.6e6, flow

    def test_two_flows_in_one_bucket_share_it(self):
        sim = Simulator()
        qdisc = make_qdisc("perflow", rate_bps=1e6, rtt_s=0.03)
        link = Link(sim, "l", 100e6, 0.005, qdisc)
        received = []
        for i in range(2):
            receiver = UdpReceiver(sim, "merged", FlowCapture())
            received.append(receiver)
            UdpSender(
                sim,
                "merged",  # same flow id on purpose
                Path([link], receiver),
                cbr_schedule(2e6, 1000, 10.0),
                dscp=1,
            )
        sim.run(until=12.0)
        total = sum(r.bytes_received for r in received) * 8.0 / 10.0
        assert total < 1.3e6  # both squeezed through ONE 1 Mb/s bucket
        assert qdisc.n_flows == 1

    def test_unmarked_flow_unaffected(self):
        sim = Simulator()
        qdisc = make_qdisc("perflow", rate_bps=1e6, rtt_s=0.03)
        link = Link(sim, "l", 100e6, 0.005, qdisc)
        receiver = UdpReceiver(sim, "c", FlowCapture())
        UdpSender(
            sim, "c", Path([link], receiver), cbr_schedule(5e6, 1000, 5.0), dscp=0
        )
        sim.run(until=7.0)
        achieved = receiver.bytes_received * 8.0 / 5.0
        assert achieved > 4.5e6
