"""Registry and protocol tests for ``repro.netsim.qdisc``."""

import pytest

from repro.netsim import qdisc as qd
from repro.netsim.packet import DATA, Packet
from repro.netsim.qdisc import (
    QdiscFidelityError,
    class_shaper_factory,
    make_qdisc,
    qdisc_spec,
    register,
    registered_qdiscs,
    standard_sizing,
    supports_fidelity,
)

ALL_MECHANISMS = (
    "codel",
    "conditional",
    "droptail",
    "dual_tbf",
    "ecn",
    "perflow",
    "pie",
    "red",
    "tbf",
)

#: Mechanisms with a fluid twin (buildable at fidelity="hybrid").
HYBRID_MECHANISMS = ("conditional", "droptail", "dual_tbf", "perflow", "tbf")


def packet(size=1500, dscp=1, flow="f"):
    return Packet(flow, DATA, 0, size, dscp=dscp)


class TestRegistry:
    def test_builtins_registered(self):
        assert registered_qdiscs() == ALL_MECHANISMS

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ValueError, match="unknown qdisc 'fq_codel'"):
            qdisc_spec("fq_codel")

    def test_spec_metadata(self):
        spec = qdisc_spec("red")
        assert spec.seeded
        assert spec.doc
        assert qdisc_spec("codel").seeded is False

    def test_supports_fidelity(self):
        for name in ALL_MECHANISMS:
            assert supports_fidelity(name, "packet")
            assert supports_fidelity(name, "hybrid") == (
                name in HYBRID_MECHANISMS
            )

    def test_supports_fidelity_rejects_unknown_fidelity(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            supports_fidelity("tbf", "quantum")

    def test_reregistering_a_half_is_an_error(self):
        name = "_test_dup"
        try:
            register(name, packet=lambda: None)
            with pytest.raises(ValueError, match="already has a packet"):
                register(name, packet=lambda: None)
            # The other halves can still be attached afterwards.
            register(name, fluid=lambda: None, seeded=True, doc="x")
            assert qdisc_spec(name).seeded
        finally:
            qd._REGISTRY.pop(name, None)


class TestMakeQdisc:
    def test_builds_every_mechanism_at_packet_fidelity(self):
        for name in ALL_MECHANISMS:
            kwargs = (
                {"capacity_bytes": 100_000}
                if name == "droptail"
                else {"rate_bps": 2e6}
            )
            q = make_qdisc(name, **kwargs)
            assert len(q) == 0
            assert q.backlog_bytes == 0
            assert q.enqueue(packet(), 0.0)
            assert len(q) == 1

    def test_hybrid_twin_exists_only_where_declared(self):
        for name in HYBRID_MECHANISMS:
            if name == "droptail":
                make_qdisc(name, fidelity="hybrid", capacity_bytes=100_000)
            else:
                make_qdisc(name, fidelity="hybrid", rate_bps=2e6)
        for name in set(ALL_MECHANISMS) - set(HYBRID_MECHANISMS):
            with pytest.raises(QdiscFidelityError):
                make_qdisc(name, fidelity="hybrid", rate_bps=2e6)

    def test_bad_parameters_name_the_mechanism(self):
        with pytest.raises(ValueError, match="bad parameters for qdisc 'red'"):
            make_qdisc("red", rate_bps=2e6, nonsense=1)

    def test_unknown_fidelity_raises(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            make_qdisc("tbf", fidelity="quantum", rate_bps=2e6)

    def test_mechanism_params_reach_the_device(self):
        device = make_qdisc("red", rate_bps=2e6, max_p=0.5)
        assert device.tbf.max_p == 0.5


class TestClassShaperFactory:
    def test_unseeded_factory_builds_fresh_instances(self):
        build = class_shaper_factory("tbf", 1e6, 5000, 10_000)
        a, b = build(), build()
        assert a is not b
        assert a.burst_bytes == 5000

    def test_seeded_factory_derives_distinct_seeds(self):
        build = class_shaper_factory("red", 1e6, 5000, 100_000, seed=3)
        a, b = build(), build()
        # Same construction params, different derived RNG streams.
        assert a._rng.random() != b._rng.random()
        # And the derivation is reproducible across factories.
        again = class_shaper_factory("red", 1e6, 5000, 100_000, seed=3)()
        c = class_shaper_factory("red", 1e6, 5000, 100_000, seed=3)()
        assert again._rng.random() == c._rng.random()

    def test_droptail_cannot_be_a_class_shaper(self):
        with pytest.raises(ValueError, match="per-flow bucket"):
            class_shaper_factory("droptail", 1e6, 5000, 10_000)


class TestStandardSizing:
    def test_paper_rule(self):
        burst, limit = standard_sizing(10e6, 0.04, 0.5)
        assert burst == int(10e6 * 0.04 / 8.0)
        assert limit == int(0.5 * burst)

    def test_floors(self):
        burst, limit = standard_sizing(1e3, 0.001, 0.01)
        assert burst == 3000
        assert limit == 1600


class TestDeprecatedFactories:
    """Each legacy factory still works but warns once per call."""

    def test_make_rate_limiter(self):
        from repro.netsim.token_bucket import make_rate_limiter

        with pytest.warns(DeprecationWarning, match="make_qdisc"):
            legacy = make_rate_limiter(8e6, 0.035)
        new = make_qdisc("tbf", rate_bps=8e6, rtt_s=0.035)
        assert legacy.tbf.burst_bytes == new.tbf.burst_bytes

    def test_make_per_flow_limiter(self):
        from repro.netsim.per_flow import make_per_flow_limiter

        with pytest.warns(DeprecationWarning, match="make_qdisc"):
            legacy = make_per_flow_limiter(1e6, 0.03)
        new = make_qdisc("perflow", rate_bps=1e6, rtt_s=0.03)
        assert type(legacy) is type(new)

    def test_make_fluid_rate_limiter(self):
        from repro.netsim.fluid import make_fluid_rate_limiter

        with pytest.warns(DeprecationWarning, match="make_qdisc"):
            legacy = make_fluid_rate_limiter(8e6, 0.035)
        new = make_qdisc("tbf", fidelity="hybrid", rate_bps=8e6, rtt_s=0.035)
        assert type(legacy) is type(new)

    def test_make_fluid_per_flow_limiter(self):
        from repro.netsim.fluid import make_fluid_per_flow_limiter

        with pytest.warns(DeprecationWarning, match="make_qdisc"):
            legacy = make_fluid_per_flow_limiter(1e6, 0.03)
        new = make_qdisc(
            "perflow", fidelity="hybrid", rate_bps=1e6, rtt_s=0.03
        )
        assert type(legacy) is type(new)
