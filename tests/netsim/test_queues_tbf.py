"""Queueing-discipline tests: drop-tail, token bucket, dual-class qdisc."""

import pytest

from repro.netsim.packet import DATA, Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.qdisc import make_qdisc
from repro.netsim.token_bucket import DualClassQdisc, TokenBucketFilter


def packet(size=1500, dscp=0, flow="f"):
    return Packet(flow, DATA, 0, size, dscp=dscp)


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(10_000)
        first, second = packet(), packet()
        q.enqueue(first, 0.0)
        q.enqueue(second, 0.0)
        assert q.dequeue(1.0)[0] is first
        assert q.dequeue(1.0)[0] is second

    def test_overflow_drops(self):
        q = DropTailQueue(3000)
        assert q.enqueue(packet(1500), 0.0)
        assert q.enqueue(packet(1500), 0.0)
        assert not q.enqueue(packet(1500), 0.0)
        assert q.drops == 1

    def test_byte_accounting(self):
        q = DropTailQueue(10_000)
        q.enqueue(packet(1000), 0.0)
        q.enqueue(packet(500), 0.0)
        assert q.backlog_bytes == 1500
        q.dequeue(0.0)
        assert q.backlog_bytes == 500

    def test_delay_statistics(self):
        q = DropTailQueue(10_000)
        q.enqueue(packet(), 0.0)
        q.enqueue(packet(), 0.0)
        q.dequeue(2.0)
        q.dequeue(4.0)
        assert q.mean_delay == pytest.approx(3.0)

    def test_empty_dequeue(self):
        q = DropTailQueue(1000)
        assert q.dequeue(0.0) == (None, None)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestTokenBucketFilter:
    def test_burst_passes_immediately(self):
        tbf = TokenBucketFilter(8000.0, 3000, 10_000)  # 1000 B/s, 3000 B bucket
        tbf.enqueue(packet(1500), 0.0)
        tbf.enqueue(packet(1500), 0.0)
        assert tbf.dequeue(0.0)[0] is not None
        assert tbf.dequeue(0.0)[0] is not None

    def test_waits_for_tokens(self):
        tbf = TokenBucketFilter(8000.0, 1500, 10_000)
        tbf.enqueue(packet(1500), 0.0)
        tbf.enqueue(packet(1500), 0.0)
        assert tbf.dequeue(0.0)[0] is not None
        got, wake = tbf.dequeue(0.0)
        assert got is None
        assert wake == pytest.approx(1.5, rel=0.01)  # 1500 B at 1000 B/s
        got, _ = tbf.dequeue(wake)
        assert got is not None

    def test_long_run_rate_is_enforced(self):
        # Feed far more than the rate; what drains in T seconds must be
        # at most rate*T + burst bytes.
        tbf = TokenBucketFilter(80_000.0, 5000, 1_000_000)
        for _ in range(200):
            tbf.enqueue(packet(1000), 0.0)
        drained = 0
        now = 0.0
        while now < 10.0:
            got, wake = tbf.dequeue(now)
            if got is not None:
                drained += got.size
            elif wake is not None:
                now = wake
            else:
                break
        assert drained <= 80_000.0 / 8.0 * 10.0 + 5000 + 1000

    def test_policer_mode_drops_on_full_queue(self):
        tbf = TokenBucketFilter(8000.0, 1500, 1500)
        assert tbf.enqueue(packet(1500), 0.0)
        assert not tbf.enqueue(packet(1500), 0.0)
        assert tbf.drops == 1

    def test_tokens_capped_at_burst(self):
        tbf = TokenBucketFilter(8000.0, 2000, 10_000)
        assert tbf.tokens(100.0) == 2000

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucketFilter(0, 1000, 1000)
        with pytest.raises(ValueError):
            TokenBucketFilter(1000, 0, 1000)


class TestDualClassQdisc:
    def test_classifier_separates_traffic(self):
        qdisc = make_qdisc("tbf", rate_bps=8e6, rtt_s=0.035)
        qdisc.enqueue(packet(dscp=1), 0.0)
        qdisc.enqueue(packet(dscp=0), 0.0)
        assert len(qdisc.tbf) == 1
        assert len(qdisc.fifo) == 1

    def test_round_robin_alternates(self):
        qdisc = make_qdisc("tbf", rate_bps=80e6, rtt_s=0.1)  # plenty of tokens
        marked = [packet(dscp=1, flow=f"m{i}") for i in range(3)]
        unmarked = [packet(dscp=0, flow=f"u{i}") for i in range(3)]
        for p in marked + unmarked:
            qdisc.enqueue(p, 0.0)
        order = [qdisc.dequeue(0.0)[0].flow_id for _ in range(6)]
        # Classes must alternate, not drain one side first.
        classes = [fid[0] for fid in order]
        assert classes in (["u", "m"] * 3, ["m", "u"] * 3)

    @staticmethod
    def _starved_qdisc():
        # 1000 B/s, 1500 B bucket, roomy queue: one packet drains the
        # bucket and the next must wait ~12 s for tokens.
        return DualClassQdisc(TokenBucketFilter(8000.0, 1500, 10_000))

    def test_fifo_serves_while_tbf_starved(self):
        qdisc = self._starved_qdisc()
        drain = packet(size=1500, dscp=1)
        qdisc.enqueue(drain, 0.0)
        assert qdisc.dequeue(0.0)[0] is drain
        qdisc.enqueue(packet(dscp=1), 0.0)
        qdisc.enqueue(packet(dscp=0), 0.0)
        got, _ = qdisc.dequeue(0.0)
        assert got is not None and got.dscp == 0

    def test_wake_time_reported_when_only_tbf_waits(self):
        qdisc = self._starved_qdisc()
        drain = packet(size=1500, dscp=1)
        qdisc.enqueue(drain, 0.0)
        qdisc.dequeue(0.0)
        qdisc.enqueue(packet(dscp=1), 0.0)
        got, wake = qdisc.dequeue(0.0)
        assert got is None
        assert wake is not None and wake > 0.0

    def test_custom_classifier(self):
        qdisc = make_qdisc("tbf", rate_bps=8e6, rtt_s=0.035)
        def classify_video(p):
            return p.flow_id.startswith("video")

        qdisc.classifier = classify_video
        qdisc.enqueue(packet(flow="video-1"), 0.0)
        qdisc.enqueue(packet(flow="web-1", dscp=1), 0.0)
        assert len(qdisc.tbf) == 1
        assert len(qdisc.fifo) == 1

    def test_device_burst_rule(self):
        qdisc = make_qdisc("tbf", rate_bps=10e6, rtt_s=0.04, queue_factor=0.5)
        assert qdisc.tbf.burst_bytes == int(10e6 * 0.04 / 8.0)
