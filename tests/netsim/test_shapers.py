"""Unit tests for the shaper zoo mechanisms (repro.netsim.shapers)."""

import pytest

from repro.netsim.packet import DATA, Packet
from repro.netsim.qdisc import make_qdisc
from repro.netsim.shapers import (
    ConditionalTokenBucket,
    CoDelTokenBucket,
    DualTokenBucketFilter,
    PieTokenBucket,
    RedTokenBucket,
)


def packet(size=1500, flow="f", seq=0, dscp=1):
    return Packet(flow, DATA, seq, size, dscp=dscp)


def drain(qdisc, now, horizon):
    """Dequeue until empty or past ``horizon``; returns (bytes, end_time)."""
    drained = 0
    while now <= horizon:
        got, wake = qdisc.dequeue(now)
        if got is not None:
            drained += got.size
        elif wake is None:
            break
        elif wake > horizon:
            break
        else:
            now = wake
    return drained, now


class TestRedTokenBucket:
    def _flooded(self, seed=0, ecn=False):
        # Slow service, large queue: the EWMA average climbs past the
        # thresholds as arrivals pile up.
        red = RedTokenBucket(
            1e6, 5000, 150_000, min_th=0.05, max_th=0.5, max_p=0.5,
            w_q=0.5, ecn=ecn, seed=seed,
        )
        for i in range(100):
            red.enqueue(packet(seq=i, flow=f"f{i}"), i * 0.001)
        return red

    def test_early_drops_engage_under_load(self):
        red = self._flooded()
        assert red.early_drops > 0
        assert red.early_drop_bytes == red.early_drops * 1500
        assert red.avg_queue_bytes > red.min_th_bytes

    def test_drops_include_early_and_tail(self):
        red = self._flooded()
        assert red.drops == red._queue.drops + red.early_drops
        assert red.drops_bytes == red._queue.drops_bytes + red.early_drop_bytes

    def test_seeded_determinism(self):
        a, b = self._flooded(seed=7), self._flooded(seed=7)
        assert (a.early_drops, a.enqueued) == (b.early_drops, b.enqueued)
        other = self._flooded(seed=8)
        assert (other.early_drops, other.enqueued) != (a.early_drops, a.enqueued)

    def test_ecn_marks_instead_of_dropping(self):
        red = self._flooded(ecn=True)
        assert red.early_drops == 0
        assert red.ecn_marks > 0
        assert red.ecn_mark_bytes == red.ecn_marks * 1500

    def test_all_arrivals_dropped_at_max_threshold(self):
        red = RedTokenBucket(
            1e6, 5000, 30_000, min_th=0.1, max_th=0.3, w_q=1.0
        )
        for i in range(40):
            red.enqueue(packet(seq=i), 0.0)
        # With w_q=1 the average tracks the instantaneous queue, which
        # sits far above max_th: late arrivals are force-dropped.
        assert not red.enqueue(packet(seq=99), 0.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RedTokenBucket(1e6, 5000, 10_000, min_th=0.5, max_th=0.5)
        with pytest.raises(ValueError):
            RedTokenBucket(1e6, 5000, 10_000, max_p=0.0)

    def test_shaper_stats_harvestable(self):
        red = self._flooded()
        stats = red.shaper_stats()
        assert stats["red.early_drops_total"] == red.early_drops
        assert stats["red.early_drop_bytes_total"] == red.early_drop_bytes


class TestCoDelTokenBucket:
    def test_head_drops_when_sojourn_stays_high(self):
        # Service at 1 Mb/s = 12 ms per 1500 B packet; a 40-deep queue
        # keeps sojourn far above the 5 ms target for many intervals.
        codel = CoDelTokenBucket(1e6, 3000, 100_000, target=0.005, interval=0.05)
        for i in range(40):
            codel.enqueue(packet(seq=i, flow=f"f{i}"), 0.0)
        drained, _ = drain(codel, 0.0, 2.0)
        assert codel.codel_drops > 0
        assert codel.drops == codel._queue.drops + codel.codel_drops
        assert codel.drops_bytes >= codel.codel_drops * 1500

    def test_no_drops_when_sojourn_below_target(self):
        codel = CoDelTokenBucket(8e6, 15_000, 100_000, target=0.1, interval=0.1)
        for i in range(5):
            codel.enqueue(packet(seq=i), i * 0.01)
            codel.dequeue(i * 0.01 + 0.002)
        assert codel.codel_drops == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CoDelTokenBucket(1e6, 3000, 10_000, target=0.0)


class TestPieTokenBucket:
    def test_drop_probability_rises_under_sustained_delay(self):
        pie = PieTokenBucket(1e6, 3000, 500_000, target=0.01, t_update=0.01)
        now = 0.0
        for i in range(400):
            pie.enqueue(packet(seq=i, flow=f"f{i}"), now)
            now += 0.005
        assert pie.drop_prob > 0.0
        assert pie.early_drops > 0
        assert pie.drops == pie._queue.drops + pie.early_drops

    def test_small_backlog_is_never_early_dropped(self):
        pie = PieTokenBucket(1e6, 3000, 500_000)
        pie._p = 1.0  # even at certain drop probability...
        assert pie.enqueue(packet(), 10.0)  # ...a near-empty queue admits

    def test_seeded_determinism(self):
        def run(seed):
            pie = PieTokenBucket(1e6, 3000, 500_000, target=0.01,
                                 t_update=0.01, seed=seed)
            now = 0.0
            for i in range(300):
                pie.enqueue(packet(seq=i), now)
                now += 0.005
            return pie.early_drops, pie.enqueued

        assert run(5) == run(5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PieTokenBucket(1e6, 3000, 10_000, target=-1.0)


class TestDualTokenBucketFilter:
    def test_two_plateaus(self):
        # CIR 1 Mb/s with a 300 kB boost, PIR 4 Mb/s with a tiny burst:
        # the first second drains near the peak rate, later seconds at
        # the committed rate.
        dual = DualTokenBucketFilter(1e6, 300_000, 10_000_000, 4e6, 3000)
        for i in range(600):
            dual.enqueue(packet(seq=i, flow=f"f{i}"), 0.0)
        first = 0
        total = 0
        now = 0.0
        while now <= 4.0:
            got, wake = dual.dequeue(now)
            if got is not None:
                total += got.size
                if now <= 1.0:
                    first += got.size
            elif wake is None or wake > 4.0:
                break
            else:
                now = wake
        later = (total - first) / 3.0  # mean per-second rate after boost
        assert first > 2.5 * later
        assert later == pytest.approx(1e6 / 8.0, rel=0.15)

    def test_never_exceeds_either_envelope(self):
        dual = DualTokenBucketFilter(1e6, 50_000, 10_000_000, 3e6, 4500)
        for i in range(400):
            dual.enqueue(packet(seq=i), 0.0)
        horizon = 2.0
        drained, _ = drain(dual, 0.0, horizon)
        assert drained <= 1e6 / 8.0 * horizon + 50_000 + 1500
        assert drained <= 3e6 / 8.0 * horizon + 4500 + 1500

    def test_peak_deferrals_counted(self):
        dual = DualTokenBucketFilter(1e6, 60_000, 10_000_000, 4e6, 1500)
        dual.enqueue(packet(), 0.0)
        dual.enqueue(packet(), 0.0)
        dual.dequeue(0.0)
        got, wake = dual.dequeue(0.0)  # CIR has tokens, PIR does not
        assert got is None and wake is not None
        assert dual.peak_deferrals == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DualTokenBucketFilter(2e6, 5000, 10_000, 1e6, 3000)
        with pytest.raises(ValueError):
            DualTokenBucketFilter(1e6, 5000, 10_000, 2e6, 0)


class TestConditionalTokenBucket:
    def test_fifo_until_byte_trigger_then_tbf(self):
        cond = ConditionalTokenBucket(
            1e6, 3000, 100_000, trigger_bytes=15_000
        )
        # Pre-trigger: every dequeue is immediate regardless of rate.
        for i in range(9):
            cond.enqueue(packet(seq=i, flow=f"f{i}"), 0.0)
            got, wake = cond.dequeue(0.0)
            assert got is not None and wake is None
        assert not cond.tripped
        cond.enqueue(packet(seq=9), 0.0)  # 10th packet crosses 15 kB
        assert cond.tripped
        cond.dequeue(0.0)
        cond.enqueue(packet(seq=10), 0.0)
        cond.enqueue(packet(seq=11), 0.0)
        cond.dequeue(0.0)
        got, wake = cond.dequeue(0.0)  # bucket drained: now rate-limited
        assert got is None and wake is not None

    def test_time_trigger(self):
        cond = ConditionalTokenBucket(
            1e6, 3000, 100_000, trigger_after_s=5.0
        )
        cond.enqueue(packet(), 1.0)
        assert not cond.tripped
        cond.enqueue(packet(), 6.0)
        assert cond.tripped and cond.tripped_at == 6.0

    def test_zero_byte_trigger_is_always_on(self):
        cond = ConditionalTokenBucket(1e6, 3000, 100_000, trigger_bytes=0)
        assert cond.tripped

    def test_requires_a_trigger(self):
        with pytest.raises(ValueError, match="trigger"):
            ConditionalTokenBucket(1e6, 3000, 100_000)

    def test_shaper_stats(self):
        cond = ConditionalTokenBucket(1e6, 3000, 100_000, trigger_bytes=1e9)
        cond.enqueue(packet(), 0.0)
        stats = cond.shaper_stats()
        assert stats["conditional.trips_total"] == 0
        assert stats["conditional.trigger_seen_bytes"] == 1500


ALL_DEVICE_MECHANISMS = (
    "tbf", "perflow", "red", "ecn", "codel", "pie", "dual_tbf", "conditional",
)


class TestDeviceConservation:
    """enqueued == dequeued + dropped + queued, for every mechanism."""

    @pytest.mark.parametrize("name", ALL_DEVICE_MECHANISMS)
    def test_packet_conservation(self, name):
        device = make_qdisc(name, rate_bps=2e6, fifo_capacity=30_000)
        accepted = 0
        rejected = 0
        dequeued = 0
        now = 0.0
        for i in range(300):
            # Mixed classes, bursty arrivals.
            p = packet(seq=i, flow=f"f{i % 7}", dscp=i % 3 != 0)
            if device.enqueue(p, now):
                accepted += 1
            else:
                rejected += 1
            if i % 5 == 0:
                got, _ = device.dequeue(now)
                if got is not None:
                    dequeued += 1
            now += 0.0005
        while True:
            got, wake = device.dequeue(now)
            if got is not None:
                dequeued += 1
            elif wake is None:
                break
            else:
                now = wake
        # device.drops counts admission rejections plus any
        # post-acceptance drops (CoDel sheds heads at dequeue); ECN
        # marks are not drops.  Every accepted packet was dequeued,
        # head-dropped, or is still queued.
        head_drops = device.drops - rejected
        assert head_drops >= 0
        assert accepted == dequeued + head_drops + len(device)
        assert device.backlog_bytes == 1500 * len(device)

    @pytest.mark.parametrize("name", ALL_DEVICE_MECHANISMS)
    def test_device_determinism_at_pinned_seed(self, name):
        def run():
            device = make_qdisc(name, rate_bps=2e6, fifo_capacity=30_000)
            now = 0.0
            for i in range(300):
                device.enqueue(
                    packet(seq=i, flow=f"f{i % 5}", dscp=i % 4 != 0), now
                )
                if i % 3 == 0:
                    device.dequeue(now)
                now += 0.0004
            return (device.drops, device.drops_bytes, device.backlog_bytes,
                    len(device))

        assert run() == run()
