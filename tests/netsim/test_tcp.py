"""TCP behaviour tests: delivery, congestion response, loss accounting."""

import pytest

from repro.netsim.capture import FlowCapture
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.path import DirectPath, Path
from repro.netsim.queues import DropTailQueue
from repro.netsim.tcp import MSS, TcpReceiver, TcpSender
from repro.netsim.qdisc import make_qdisc


def build_flow(
    sim,
    bandwidth=10e6,
    delay=0.01,
    qdisc=None,
    total_bytes=None,
    stop_at=10.0,
    pacing=True,
    dscp=0,
    cc="cubic",
):
    link = Link(sim, "l", bandwidth, delay, qdisc)
    capture = FlowCapture()
    receiver = TcpReceiver(sim, "flow", capture)
    path = Path([link], receiver)
    reverse = DirectPath(sim, delay, None)
    sender = TcpSender(
        sim,
        "flow",
        path,
        receiver,
        reverse,
        dscp=dscp,
        cc=cc,
        pacing=pacing,
        total_bytes=total_bytes,
        stop_at=stop_at,
    )
    reverse.sink = sender
    return sender, receiver, capture, link


class TestDelivery:
    def test_transfers_fixed_size_without_loss(self):
        sim = Simulator()
        sender, receiver, _, link = build_flow(sim, total_bytes=200 * MSS)
        sim.run(until=20.0)
        assert receiver.rcv_nxt == 200 * MSS
        assert sender.retransmission_rate == 0.0
        assert link.drops == 0

    def test_throughput_approaches_link_rate(self):
        sim = Simulator()
        sender, receiver, capture, _ = build_flow(sim, bandwidth=5e6, stop_at=10.0)
        sim.run(until=11.0)
        assert capture.mean_throughput() > 0.8 * 5e6

    def test_rtt_estimate_close_to_configured(self):
        sim = Simulator()
        sender, _, _, _ = build_flow(sim, delay=0.025, total_bytes=100 * MSS)
        sim.run(until=20.0)
        assert sender.min_rtt == pytest.approx(0.05, rel=0.2)

    def test_stop_halts_transmissions(self):
        sim = Simulator()
        sender, _, _, _ = build_flow(sim, stop_at=1.0)
        sim.run(until=5.0)
        assert sender.send_times[-1] <= 1.0


class TestCongestionResponse:
    def test_loss_reduces_cwnd(self):
        sim = Simulator()
        # Tight buffer forces drops once cwnd grows.
        sender, _, _, link = build_flow(
            sim, bandwidth=2e6, qdisc=DropTailQueue(8 * (MSS + 52)), stop_at=15.0
        )
        sim.run(until=16.0)
        assert link.drops > 0
        assert sender.retransmission_rate > 0
        assert sender.cwnd < 100

    def test_reno_also_recovers(self):
        sim = Simulator()
        sender, receiver, _, _ = build_flow(
            sim,
            bandwidth=2e6,
            qdisc=DropTailQueue(8 * (MSS + 52)),
            stop_at=10.0,
            cc="reno",
        )
        sim.run(until=12.0)
        assert receiver.rcv_nxt > 0
        # Everything sent before the stop eventually got through.
        assert receiver.bytes_received > 1e6

    def test_throttled_flow_respects_rate_limiter(self):
        sim = Simulator()
        qdisc = make_qdisc("tbf", rate_bps=2e6, rtt_s=0.02, queue_factor=0.5)
        sender, _, capture, _ = build_flow(
            sim, bandwidth=100e6, qdisc=qdisc, stop_at=20.0, dscp=1
        )
        sim.run(until=21.0)
        achieved = capture.mean_throughput()
        assert achieved < 2.3e6  # cannot beat the limiter
        assert achieved > 1.2e6  # but uses a good share of it

    def test_unmarked_flow_bypasses_rate_limiter(self):
        sim = Simulator()
        qdisc = make_qdisc("tbf", rate_bps=2e6, rtt_s=0.02)
        sender, _, capture, _ = build_flow(
            sim, bandwidth=20e6, qdisc=qdisc, stop_at=5.0, dscp=0
        )
        sim.run(until=6.0)
        assert capture.mean_throughput() > 5e6

    def test_retransmissions_logged_with_reasons(self):
        sim = Simulator()
        sender, _, _, _ = build_flow(
            sim, bandwidth=2e6, qdisc=DropTailQueue(8 * (MSS + 52)), stop_at=10.0
        )
        sim.run(until=12.0)
        assert len(sender.retx_log) > 0
        for when, seq, reason in sender.retx_log:
            assert reason in ("fast", "sack", "partial", "rto")
            assert seq % MSS == 0
            assert when >= 0

    def test_unknown_cc_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_flow(sim, cc="vegas")


class TestPacing:
    def test_paced_sender_spreads_packets(self):
        sim = Simulator()
        sender, _, _, _ = build_flow(sim, bandwidth=50e6, stop_at=3.0, pacing=True)
        sim.run(until=3.5)
        gaps = [
            b - a for a, b in zip(sender.send_times, sender.send_times[1:])
        ]
        # After startup, at least half the gaps exceed 0.2 ms (no
        # back-to-back line-rate bursts).
        late_gaps = gaps[len(gaps) // 2 :]
        burst_fraction = sum(1 for g in late_gaps if g < 2e-4) / max(len(late_gaps), 1)
        assert burst_fraction < 0.5

    def test_unpaced_sender_bursts(self):
        sim = Simulator()
        sender, _, _, _ = build_flow(sim, bandwidth=50e6, stop_at=3.0, pacing=False)
        sim.run(until=3.5)
        gaps = [
            b - a for a, b in zip(sender.send_times, sender.send_times[1:])
        ]
        burst_fraction = sum(1 for g in gaps if g < 1e-5) / max(len(gaps), 1)
        assert burst_fraction > 0.2


class TestAppLimited:
    def test_sender_never_outruns_application(self):
        from repro.netsim.background import SteadyAppSource

        sim = Simulator()
        link = Link(sim, "l", 100e6, 0.005)
        receiver = TcpReceiver(sim, "f", FlowCapture())
        path = Path([link], receiver)
        reverse = DirectPath(sim, 0.005, None)
        source = SteadyAppSource(1e6, start_at=0.0)
        sender = TcpSender(
            sim, "f", path, receiver, reverse, stop_at=5.0, app_source=source
        )
        reverse.sink = sender
        sim.run(until=6.0)
        # ~1 Mb/s for 5 s = ~625 KB; TCP on a fast link must not exceed
        # the application's writes by more than one chunk.
        assert receiver.rcv_nxt <= source.available_bytes(5.0) + 2 * MSS
        assert receiver.rcv_nxt > 0.5e6 * 5 / 8
