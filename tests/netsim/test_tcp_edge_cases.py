"""TCP edge cases: Karn's rule, recovery details, go-back-N, receivers."""

from repro.netsim.capture import FlowCapture
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import ACK, DATA, Packet
from repro.netsim.path import DirectPath, Path
from repro.netsim.queues import DropTailQueue
from repro.netsim.tcp import MSS, TcpReceiver, TcpSender

def build(bandwidth=10e6, qdisc=None, stop_at=8.0, **kwargs):
    sim = Simulator()
    link = Link(sim, "l", bandwidth, 0.01, qdisc)
    receiver = TcpReceiver(sim, "f", FlowCapture())
    path = Path([link], receiver)
    reverse = DirectPath(sim, 0.01, None)
    sender = TcpSender(
        sim, "f", path, receiver, reverse, stop_at=stop_at, **kwargs
    )
    reverse.sink = sender
    return sim, sender, receiver, link


class TestKarnsRule:
    def test_retransmitted_segments_do_not_produce_rtt_samples(self):
        sim, sender, receiver, link = build(
            bandwidth=2e6, qdisc=DropTailQueue(8 * (MSS + 52))
        )
        sim.run(until=10.0)
        assert len(sender.retx_log) > 0
        # Every RTT sample must be plausible (non-negative, below the
        # simulation horizon); retransmission-ambiguous samples are
        # excluded by the is_retx echo.
        for _, rtt in sender.rtt_samples:
            assert 0 < rtt < 5.0


class TestReceiver:
    def test_out_of_order_data_is_buffered_not_lost(self):
        sim = Simulator()
        receiver = TcpReceiver(sim, "f")
        acks = []

        class Collector:
            def inject(self, packet):
                acks.append(packet.seq)

        receiver.reverse_path = Collector()
        # Deliver segment 1 before segment 0.
        receiver.receive(Packet("f", DATA, MSS, MSS + 52))
        assert receiver.rcv_nxt == 0
        receiver.receive(Packet("f", DATA, 0, MSS + 52))
        assert receiver.rcv_nxt == 2 * MSS
        assert acks == [0, 2 * MSS]

    def test_duplicate_data_generates_duplicate_ack(self):
        sim = Simulator()
        receiver = TcpReceiver(sim, "f")
        acks = []

        class Collector:
            def inject(self, packet):
                acks.append(packet.seq)

        receiver.reverse_path = Collector()
        receiver.receive(Packet("f", DATA, 0, MSS + 52))
        receiver.receive(Packet("f", DATA, 0, MSS + 52))
        assert acks == [MSS, MSS]

    def test_ack_carries_sack_blocks(self):
        sim = Simulator()
        receiver = TcpReceiver(sim, "f")
        collected = []

        class Collector:
            def inject(self, packet):
                collected.append(packet)

        receiver.reverse_path = Collector()
        receiver.receive(Packet("f", DATA, 2 * MSS, MSS + 52))
        assert collected[-1].sack is not None
        assert 2 * MSS in collected[-1].sack

    def test_ignores_stray_acks(self):
        sim = Simulator()
        receiver = TcpReceiver(sim, "f")
        receiver.receive(Packet("f", ACK, 0, 52))  # must not crash
        assert receiver.packets_received == 0


class TestGoBackN:
    def test_catastrophic_burst_recovers(self):
        # A large window hitting a sudden tiny bottleneck must not
        # reduce the flow to one segment per RTO (the pre-fix failure).
        sim = Simulator()
        fast = Link(sim, "fast", 100e6, 0.005)
        receiver = TcpReceiver(sim, "f", FlowCapture())
        path = Path([fast], receiver)
        reverse = DirectPath(sim, 0.005, None)
        sender = TcpSender(sim, "f", path, receiver, reverse, stop_at=20.0)
        reverse.sink = sender

        def throttle():
            fast.bandwidth_bps = 2e6
            fast.qdisc = DropTailQueue(6 * (MSS + 52))

        sim.schedule(3.0, throttle)
        sim.run(until=21.0)
        # After the collapse the flow must still push on the order of
        # the new bottleneck rate, not ~5 segments/second.
        late_bytes = receiver.bytes_received - 100e6 / 8 * 0  # total
        assert receiver.rcv_nxt > 3.0 * 100e6 / 8 * 0.5  # got the fast phase
        tail_throughput = [
            t for t in sender.send_times if t > 10.0
        ]
        assert len(tail_throughput) > 10 * 10  # >> 1 pkt per 200 ms RTO


class TestSenderLifecycle:
    def test_total_bytes_completion_stops_sending(self):
        sim, sender, receiver, _ = build(total_bytes=50 * MSS, stop_at=None)
        sim.run(until=30.0)
        assert receiver.rcv_nxt == 50 * MSS
        assert sender.snd_una == sender.snd_nxt

    def test_stop_cancels_timers(self):
        sim, sender, receiver, _ = build(stop_at=2.0)
        sim.run(until=2.1)
        sender.stop()
        assert sender._rto_handle is None or sender._rto_handle.cancelled
        assert sender._pace_handle is None or sender._pace_handle.cancelled

    def test_queuing_delay_zero_without_samples(self):
        sim, sender, _, _ = build(stop_at=0.001)
        assert sender.mean_queuing_delay() == 0.0
