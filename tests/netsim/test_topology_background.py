"""Figure-1 topology builder and background-traffic tests."""

import numpy as np
import pytest

from repro.netsim.background import (
    CountingSink,
    ModulatedPoissonBackground,
    SteadyAppSource,
    TcpBackgroundPool,
)
from repro.netsim.engine import Simulator
from repro.netsim.path import Path
from repro.netsim.queues import DropTailQueue
from repro.netsim.token_bucket import DualClassQdisc
from repro.netsim.topology import FigureOneTopology, TopologyConfig


class TestTopologyConfig:
    def test_defaults_are_valid(self):
        TopologyConfig()

    def test_rejects_unknown_limiter(self):
        with pytest.raises(ValueError):
            TopologyConfig(limiter="everywhere")

    def test_rejects_impossible_rtt(self):
        with pytest.raises(ValueError):
            TopologyConfig(rtt_1=0.001, common_delay_s=0.002)


class TestFigureOneTopology:
    def test_paths_share_only_the_common_link(self):
        sim = Simulator()
        topology = FigureOneTopology(sim, TopologyConfig())
        p1 = topology.forward_path(1, CountingSink())
        p2 = topology.forward_path(2, CountingSink())
        shared = set(p1.links) & set(p2.links)
        assert shared == {topology.link_c}

    def test_common_limiter_placement(self):
        sim = Simulator()
        topology = FigureOneTopology(
            sim, TopologyConfig(limiter="common", limiter_rate_bps=2e6)
        )
        assert isinstance(topology.link_c.qdisc, DualClassQdisc)
        assert isinstance(topology.link_1.qdisc, DropTailQueue)
        assert topology.limiter_qdisc is topology.link_c.qdisc

    def test_noncommon_limiter_placement(self):
        sim = Simulator()
        topology = FigureOneTopology(
            sim, TopologyConfig(limiter="noncommon", limiter_rate_bps=2e6)
        )
        assert isinstance(topology.link_1.qdisc, DualClassQdisc)
        assert isinstance(topology.link_2.qdisc, DualClassQdisc)
        assert isinstance(topology.link_c.qdisc, DropTailQueue)
        assert topology.limiter_qdisc is None

    def test_rtt_composition(self):
        sim = Simulator()
        config = TopologyConfig(rtt_1=0.040, rtt_2=0.080)
        topology = FigureOneTopology(sim, config)
        for which in (1, 2):
            forward = (
                topology.noncommon_links[which - 1].delay_s + config.common_delay_s
            )
            reverse = topology.rtt(which) / 2.0
            assert forward + reverse == pytest.approx(topology.rtt(which), rel=0.01)

    def test_extra_servers(self):
        sim = Simulator()
        topology = FigureOneTopology(
            sim, TopologyConfig(extra_server_rtts=(0.05, 0.06))
        )
        assert len(topology.noncommon_links) == 4
        p3 = topology.forward_path(3, CountingSink())
        assert topology.link_c in p3.links


class TestModulatedBackground:
    def test_mean_rate_approximately_respected(self):
        sim = Simulator()
        rng = np.random.default_rng(5)
        sink = CountingSink()
        from repro.netsim.link import Link

        link = Link(sim, "l", 1e9, 0.001)
        ModulatedPoissonBackground(
            sim, rng, Path([link], sink), 5e6, stop_at=30.0
        )
        sim.run(until=31.0)
        achieved = sink.bytes * 8.0 / 30.0
        assert achieved == pytest.approx(5e6, rel=0.35)

    def test_rate_fluctuates(self):
        sim = Simulator()
        rng = np.random.default_rng(6)
        from repro.netsim.link import Link

        link = Link(sim, "l", 1e9, 0.001)
        bg = ModulatedPoissonBackground(
            sim, rng, Path([link], CountingSink()), 5e6, stop_at=20.0
        )
        rates = []
        for t in np.arange(0.5, 20.0, 0.5):
            sim.run(until=float(t))
            rates.append(bg.current_rate_bps())
        assert np.std(rates) / np.mean(rates) > 0.1

    def test_dscp_marking_fraction(self):
        sim = Simulator()
        rng = np.random.default_rng(7)
        marked = [0, 0]

        class MarkCounter:
            def receive(self, packet):
                marked[packet.dscp] += 1

        from repro.netsim.link import Link

        link = Link(sim, "l", 1e9, 0.0)
        ModulatedPoissonBackground(
            sim, rng, Path([link], MarkCounter()), 5e6, dscp1_fraction=0.75,
            stop_at=20.0,
        )
        sim.run(until=21.0)
        fraction = marked[1] / (marked[0] + marked[1])
        assert fraction == pytest.approx(0.75, abs=0.05)

    def test_independent_generators_decorrelate(self):
        sim = Simulator()
        from repro.netsim.link import Link

        link_a = Link(sim, "a", 1e9, 0.0)
        link_b = Link(sim, "b", 1e9, 0.0)
        bg_a = ModulatedPoissonBackground(
            sim, np.random.default_rng(1), Path([link_a], CountingSink()), 5e6,
            stop_at=40.0,
        )
        bg_b = ModulatedPoissonBackground(
            sim, np.random.default_rng(2), Path([link_b], CountingSink()), 5e6,
            stop_at=40.0,
        )
        rates_a, rates_b = [], []
        for t in np.arange(0.5, 40.0, 0.5):
            sim.run(until=float(t))
            rates_a.append(bg_a.current_rate_bps())
            rates_b.append(bg_b.current_rate_bps())
        correlation = np.corrcoef(rates_a, rates_b)[0, 1]
        assert abs(correlation) < 0.5

    def test_rejects_bad_parameters(self):
        sim = Simulator()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ModulatedPoissonBackground(sim, rng, None, 0.0)
        with pytest.raises(ValueError):
            ModulatedPoissonBackground(sim, rng, None, 1e6, dscp1_fraction=2.0)


class TestSteadyAppSource:
    def test_availability_grows_with_time(self):
        source = SteadyAppSource(8e6, start_at=0.0, chunk_bytes=10_000)
        assert source.available_bytes(0.0) >= 10_000
        assert source.available_bytes(1.0) >= 1e6 - 10_000

    def test_next_release_strictly_future(self):
        source = SteadyAppSource(8e6, chunk_bytes=10_000)
        now = 0.0
        for _ in range(50):
            nxt = source.next_release_after(now)
            assert nxt > now
            now = nxt

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            SteadyAppSource(0.0)


class TestTcpBackgroundPool:
    def test_pool_generates_traffic(self):
        sim = Simulator()
        rng = np.random.default_rng(8)
        from repro.netsim.link import Link

        link = Link(sim, "l", 50e6, 0.005)
        pool = TcpBackgroundPool(
            sim, rng, [link], n_longlived=2, short_flow_rate=2.0, stop_at=10.0
        )
        sim.run(until=12.0)
        assert len(pool.senders) > 2  # short flows spawned
        total = sum(s.packets_sent for s in pool.senders)
        assert total > 100
