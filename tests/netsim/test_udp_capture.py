"""UDP replay, FlowCapture, and PathMeasurements tests."""

import numpy as np
import pytest

from repro.netsim.capture import FlowCapture, PathMeasurements, binned_loss_series
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.path import Path
from repro.netsim.queues import DropTailQueue
from repro.netsim.udp import UDP_HEADER_BYTES, UdpReceiver, UdpSender


class TestUdpReplay:
    def test_schedule_is_replayed_exactly(self):
        sim = Simulator()
        link = Link(sim, "l", 100e6, 0.001)
        receiver = UdpReceiver(sim, "u")
        path = Path([link], receiver)
        schedule = [(0.0, 500), (0.01, 600), (0.02, 700)]
        sender = UdpSender(sim, "u", path, schedule)
        sim.run()
        assert sender.packets_sent == 3
        assert receiver.bytes_received == 500 + 600 + 700
        assert receiver.received_seqs == {0, 1, 2}

    def test_start_offset_shifts_transmissions(self):
        sim = Simulator()
        link = Link(sim, "l", 100e6, 0.0)
        receiver = UdpReceiver(sim, "u")
        sender = UdpSender(sim, "u", Path([link], receiver), [(0.0, 500)], start_at=2.0)
        sim.run()
        assert sender.send_times == [2.0]

    def test_loss_events_from_gaps(self):
        sim = Simulator()
        # Slow link with a tiny queue: later packets of a burst drop.
        link = Link(sim, "l", 8e4, 0.001, DropTailQueue(1200))
        receiver = UdpReceiver(sim, "u")
        path = Path([link], receiver)
        schedule = [(i * 1e-4, 500) for i in range(20)]
        UdpSender(sim, "u", path, schedule)
        sim.run(until=60.0)
        lost = receiver.loss_events(schedule, base_delay=0.001)
        assert len(lost) == 20 - len(receiver.received_seqs)
        for when, seq in lost:
            assert seq not in receiver.received_seqs
            assert when == pytest.approx(schedule[seq][0] + 0.001)

    def test_wire_size_includes_header(self):
        sim = Simulator()
        link = Link(sim, "l", 8e6, 0.0)
        receiver = UdpReceiver(sim, "u")
        UdpSender(sim, "u", Path([link], receiver), [(0.0, 1000)])
        sim.run()
        assert link.bytes_sent == 1000 + UDP_HEADER_BYTES


class TestFlowCapture:
    def test_throughput_samples_conserve_bytes(self):
        capture = FlowCapture()
        rng = np.random.default_rng(3)
        times = np.sort(rng.uniform(0, 10, 500))
        for t in times:
            capture.on_arrival(float(t), 1000)
        samples = capture.throughput_samples(n_intervals=100)
        total_bits = samples.sum() * (times[-1] - times[0]) / 100
        assert total_bits == pytest.approx(500 * 1000 * 8, rel=0.01)

    def test_sample_count(self):
        capture = FlowCapture()
        for i in range(50):
            capture.on_arrival(i * 0.1, 100)
        assert len(capture.throughput_samples(n_intervals=100)) == 100

    def test_empty_capture(self):
        capture = FlowCapture()
        assert len(capture.throughput_samples()) == 0
        assert capture.mean_throughput() == 0.0

    def test_mean_throughput(self):
        capture = FlowCapture()
        capture.on_arrival(0.0, 1000)
        capture.on_arrival(1.0, 1000)
        assert capture.mean_throughput() == pytest.approx(16000.0)


class TestPathMeasurements:
    def test_loss_rate(self):
        m = PathMeasurements([0.1, 0.2, 0.3, 0.4], [0.25], rtt=0.03)
        assert m.loss_rate == 0.25
        assert m.packets_sent == 4
        assert m.packets_lost == 1

    def test_time_span(self):
        m = PathMeasurements([1.0, 5.0], [3.0], rtt=0.03)
        assert m.time_span() == (1.0, 5.0)

    def test_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            PathMeasurements([1.0], [], rtt=0.0)


class TestBinnedLossSeries:
    def _measurements(self, send_rate, loss_times, duration, rtt=0.035):
        sends = np.arange(0, duration, 1.0 / send_rate)
        return PathMeasurements(sends, loss_times, rtt)

    def test_conservation_of_losses(self):
        rng = np.random.default_rng(5)
        loss_1 = np.sort(rng.uniform(0, 30, 60))
        loss_2 = np.sort(rng.uniform(0, 30, 40))
        m1 = self._measurements(100, loss_1, 30.0)
        m2 = self._measurements(100, loss_2, 30.0)
        s1, s2 = binned_loss_series(m1, m2, 1.0, min_packets=10)
        assert len(s1) == len(s2)
        assert np.all(s1 >= 0) and np.all(s2 >= 0)

    def test_discards_no_loss_intervals(self):
        # Losses only in the first 10 seconds: later intervals with no
        # loss on either path must be dropped (Algorithm 1 line 4).
        m1 = self._measurements(100, np.linspace(0.5, 9.5, 30), 30.0)
        m2 = self._measurements(100, np.linspace(0.5, 9.5, 30), 30.0)
        s1, _ = binned_loss_series(m1, m2, 1.0)
        assert len(s1) == pytest.approx(10, abs=1)

    def test_discards_low_transmission_intervals(self):
        # Path 2 transmits only 1 packet/s: below min_packets, all
        # intervals are discarded.
        m1 = self._measurements(100, [1.5, 2.5], 30.0)
        m2 = self._measurements(1, [1.6], 30.0)
        s1, s2 = binned_loss_series(m1, m2, 1.0, min_packets=10)
        assert len(s1) == 0 and len(s2) == 0

    def test_too_short_span_returns_empty(self):
        m1 = PathMeasurements([0.0, 0.1], [0.05], rtt=0.03)
        m2 = PathMeasurements([0.0, 0.1], [0.05], rtt=0.03)
        s1, s2 = binned_loss_series(m1, m2, 10.0)
        assert len(s1) == 0 and len(s2) == 0
