"""Exporter formats: JSONL lines and the stderr summary table."""

import json

from repro.obs import MetricsSink, snapshot_lines, summary_table, write_jsonl
from repro.obs.exporters import EXPORT_SCHEMA


def _sample_snapshot():
    sink = MetricsSink()
    sink.inc("z.counter", 3)
    sink.inc("a.counter")
    sink.set_gauge("g", 0.5)
    sink.observe("h", 2.0)
    sink.observe("h", 4.0)
    sink.add_span({"name": "s", "attrs": {"k": "v"}, "duration_s": 0.25})
    return sink.snapshot()


class TestJsonl:
    def test_every_line_parses_and_meta_leads(self):
        lines = list(snapshot_lines(_sample_snapshot()))
        parsed = [json.loads(line) for line in lines]
        assert parsed[0] == {
            "type": "meta",
            "schema": EXPORT_SCHEMA,
            "spans_dropped": 0,
        }
        assert {entry["type"] for entry in parsed[1:]} == {
            "counter", "gauge", "histogram", "span",
        }

    def test_counters_sorted_by_name(self):
        parsed = [json.loads(line) for line in snapshot_lines(_sample_snapshot())]
        counters = [entry["name"] for entry in parsed if entry["type"] == "counter"]
        assert counters == sorted(counters)

    def test_histogram_lines_carry_mean(self):
        parsed = [json.loads(line) for line in snapshot_lines(_sample_snapshot())]
        (hist,) = [entry for entry in parsed if entry["type"] == "histogram"]
        assert hist["mean"] == 3.0
        assert hist["count"] == 2

    def test_write_jsonl_roundtrips_from_disk(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        write_jsonl(_sample_snapshot(), path)
        parsed = [
            json.loads(line) for line in path.read_text().splitlines() if line
        ]
        counters = {
            entry["name"]: entry["value"]
            for entry in parsed
            if entry["type"] == "counter"
        }
        assert counters == {"a.counter": 1, "z.counter": 3}


class TestSummaryTable:
    def test_empty_snapshot_has_a_placeholder(self):
        assert summary_table(MetricsSink().snapshot()) == "(no metrics recorded)"

    def test_sections_and_values_present(self):
        table = summary_table(_sample_snapshot())
        assert "-- counters" in table
        assert "-- gauges" in table
        assert "-- histograms" in table
        assert "-- spans" in table
        assert "z.counter" in table
