"""Double-entry checks for the ``netsim.fluid.*`` counters.

Same principle as the TBF counters: every live hot-path fluid counter
has a harvested counterpart computed independently from the queues'
byte ledgers, and the two must agree -- plus the fluid model's own
conservation law (offered == served + dropped + final backlog) must
hold on real experiment topologies, not just unit-driven queues.
"""

import pytest

from repro.api import SweepRequest, run_sweep
from repro.experiments.scenarios import ScenarioConfig
from repro.perf.bench import canonical_record

DURATION = 4.0


def _configs():
    return [
        ScenarioConfig(
            app="netflix", duration=DURATION, seed=seed, fidelity="hybrid"
        ).with_(limiter=limiter)
        for seed, limiter in ((0, "common"), (1, "perflow"))
    ]


@pytest.fixture(scope="module")
def metered():
    """One serial metered hybrid sweep shared by the cross-checks."""
    return run_sweep(SweepRequest.detection(_configs(), jobs=1, metrics=True))


class TestFluidCounterCorrectness:
    def test_rate_segments_recorded(self, metered):
        assert metered.metrics["counters"]["netsim.fluid.rate_segments"] > 0

    def test_live_deferrals_equal_harvested(self, metered):
        counters = metered.metrics["counters"]
        assert counters["netsim.fluid.deferrals"] > 0
        assert (
            counters["netsim.fluid.deferrals"]
            == counters["netsim.fluid.deferrals_total"]
        )

    def test_live_virtual_drops_equal_harvested(self, metered):
        counters = metered.metrics["counters"]
        assert counters["netsim.fluid.virtual_drop_bytes"] == pytest.approx(
            counters["netsim.fluid.bg_bytes_dropped_total"], rel=1e-9
        )

    def test_byte_conservation_on_experiment_topology(self, metered):
        counters = metered.metrics["counters"]
        backlog = metered.metrics["histograms"][
            "netsim.fluid.final_virtual_backlog_bytes"
        ]["sum"]
        offered = counters["netsim.fluid.bg_bytes_offered_total"]
        assert offered > 0
        assert offered == pytest.approx(
            counters["netsim.fluid.bg_bytes_served_total"]
            + counters["netsim.fluid.bg_bytes_dropped_total"]
            + backlog,
            rel=1e-9,
        )

    def test_packet_mode_emits_no_fluid_counters(self):
        result = run_sweep(
            SweepRequest.detection(
                [ScenarioConfig(app="netflix", duration=DURATION, seed=0)],
                jobs=1,
                metrics=True,
            )
        )
        fluid = [k for k in result.metrics["counters"] if "fluid" in k]
        assert fluid == []


class TestMetricsTransparency:
    def test_metrics_never_change_a_hybrid_record_byte(self, metered):
        bare = run_sweep(SweepRequest.detection(_configs(), jobs=1))
        assert [canonical_record(r) for r in bare.results] == [
            canonical_record(r) for r in metered.results
        ]
