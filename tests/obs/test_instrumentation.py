"""Cross-checks between instrumented counters and ground truth.

The double-entry principle: every live hot-path counter has an
independent harvested (or record-level) counterpart, and the two must
agree exactly -- that is what makes the metrics trustworthy enough to
debug with.
"""

import pytest

from repro import obs
from repro.api import SweepRequest, run_sweep
from repro.experiments.scenarios import ScenarioConfig
from repro.perf.bench import canonical_record
from repro.store import ExperimentStore

DURATION = 4.0


def _configs(n=2):
    return [
        ScenarioConfig(app="netflix", duration=DURATION, seed=seed)
        for seed in range(n)
    ]


@pytest.fixture(scope="module")
def metered():
    """One serial metered sweep shared by the cross-check tests."""
    return run_sweep(SweepRequest.detection(_configs(), jobs=1, metrics=True))


class TestCounterCorrectness:
    def test_live_tbf_drops_equal_harvested_drops(self, metered):
        counters = metered.metrics["counters"]
        assert counters["netsim.tbf.drops"] > 0
        assert counters["netsim.tbf.drops"] == counters["netsim.tbf.drops_total"]

    def test_cells_counter_matches_record_stream(self, metered):
        counters = metered.metrics["counters"]
        completed = sum(1 for r in metered.results if not r.aborted)
        aborted = sum(1 for r in metered.results if r.aborted)
        assert counters.get("runner.cells_completed", 0) == completed
        assert counters.get("runner.cells_aborted", 0) == aborted

    def test_engine_ran_once_per_cell(self, metered):
        counters = metered.metrics["counters"]
        assert counters["netsim.engine.runs"] == len(metered.results)
        assert counters["netsim.engine.events"] > 0

    def test_store_hits_plus_misses_cover_every_cell(self, tmp_path):
        configs = _configs()
        store = ExperimentStore(tmp_path / "store")
        cold = run_sweep(
            SweepRequest.detection(configs, jobs=1, store=store, metrics=True)
        )
        warm = run_sweep(
            SweepRequest.detection(configs, jobs=1, store=store, metrics=True)
        )
        for result in (cold, warm):
            counters = result.metrics["counters"]
            assert (
                counters.get("store.hits", 0) + counters.get("store.misses", 0)
                == len(configs)
            )
        assert cold.metrics["counters"].get("store.hits", 0) == 0
        assert cold.metrics["counters"]["store.checkpoints"] == len(configs)
        assert warm.metrics["counters"]["store.hits"] == len(configs)


class TestWorkerAggregation:
    def test_parallel_counters_match_serial(self, metered):
        parallel = run_sweep(
            SweepRequest.detection(_configs(), jobs=2, metrics=True)
        )
        serial_counters = metered.metrics["counters"]
        parallel_counters = parallel.metrics["counters"]
        for name in (
            "netsim.engine.events",
            "netsim.tbf.drops",
            "netsim.tcp.retransmits",
            "runner.cells_completed",
        ):
            assert parallel_counters.get(name) == serial_counters.get(name), name


class TestDeterminismInvariant:
    def test_metrics_never_change_a_record_byte(self, metered):
        plain = run_sweep(SweepRequest.detection(_configs(), jobs=1))
        assert plain.metrics is None
        assert [canonical_record(r) for r in plain.results] == [
            canonical_record(r) for r in metered.results
        ]

    def test_sweep_leaves_global_state_disabled(self, metered):
        assert not obs.enabled()
