"""MetricsSink / NullSink semantics and the global enable machinery."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    NULL_SINK,
    SPAN_LIMIT,
    MetricsSink,
    disable,
    enable,
    enabled,
    use_sink,
)


class TestMetricsSink:
    def test_counters_accumulate(self):
        sink = MetricsSink()
        sink.inc("a")
        sink.inc("a", 4)
        assert sink.counters["a"] == 5

    def test_gauges_last_write_wins(self):
        sink = MetricsSink()
        sink.set_gauge("g", 1.0)
        sink.set_gauge("g", 2.5)
        assert sink.gauges["g"] == 2.5

    def test_histograms_track_count_sum_min_max(self):
        sink = MetricsSink()
        for value in (3.0, 1.0, 2.0):
            sink.observe("h", value)
        hist = sink.histograms["h"]
        assert hist == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}

    def test_snapshot_is_a_deep_enough_copy(self):
        sink = MetricsSink()
        sink.inc("a")
        sink.observe("h", 1.0)
        snap = sink.snapshot()
        sink.inc("a")
        sink.observe("h", 9.0)
        assert snap["counters"]["a"] == 1
        assert snap["histograms"]["h"]["max"] == 1.0

    def test_merge_combines_everything(self):
        a = MetricsSink()
        a.inc("c", 2)
        a.observe("h", 1.0)
        a.set_gauge("g", 1.0)
        b = MetricsSink()
        b.inc("c", 3)
        b.inc("only_b")
        b.observe("h", 5.0)
        b.set_gauge("g", 7.0)
        b.add_span({"name": "s", "attrs": {}, "duration_s": 0.0})
        a.merge(b.snapshot())
        assert a.counters == {"c": 5, "only_b": 1}
        assert a.histograms["h"] == {"count": 2, "sum": 6.0, "min": 1.0, "max": 5.0}
        assert a.gauges["g"] == 7.0
        assert len(a.spans) == 1

    def test_merge_empty_snapshot_is_noop(self):
        sink = MetricsSink()
        sink.inc("c")
        sink.merge(None)
        sink.merge({})
        assert sink.counters == {"c": 1}

    def test_span_limit_bounds_memory(self):
        sink = MetricsSink()
        for index in range(SPAN_LIMIT + 5):
            sink.add_span({"name": f"s{index}"})
        assert len(sink.spans) == SPAN_LIMIT
        assert sink.spans_dropped == 5

    def test_clear_forgets_everything(self):
        sink = MetricsSink()
        sink.inc("c")
        sink.observe("h", 1.0)
        sink.add_span({"name": "s"})
        sink.clear()
        assert sink.snapshot() == NULL_SINK.snapshot()


class TestNullSink:
    def test_every_operation_is_a_noop(self):
        NULL_SINK.inc("c")
        NULL_SINK.observe("h", 1.0)
        NULL_SINK.set_gauge("g", 1.0)
        NULL_SINK.add_span({})
        NULL_SINK.merge({"counters": {"c": 1}})
        snap = NULL_SINK.snapshot()
        assert snap["counters"] == {}
        assert not NULL_SINK.on


class TestGlobalState:
    def test_disabled_by_default(self):
        assert not enabled()
        assert obs_metrics.SINK is NULL_SINK

    def test_enable_disable_roundtrip(self):
        sink = enable()
        try:
            assert enabled()
            assert obs_metrics.SINK is sink
        finally:
            disable()
        assert not enabled()
        assert obs_metrics.SINK is NULL_SINK

    def test_use_sink_restores_previous_state(self):
        outer = MetricsSink()
        with use_sink(outer):
            with use_sink(MetricsSink()) as inner:
                inner.inc("inner")
                assert obs_metrics.SINK is inner
            assert obs_metrics.SINK is outer
        assert not enabled()

    def test_use_sink_none_disables(self):
        with use_sink(MetricsSink()):
            with use_sink(None):
                assert not enabled()
            assert enabled()

    def test_use_sink_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_sink(MetricsSink()):
                raise RuntimeError("boom")
        assert not enabled()
