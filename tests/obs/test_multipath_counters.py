"""Double-entry checks for the ``netsim.multipath.*`` counters.

The bundle books every offered packet on a live counter *and* exposes
per-member statistics the harvest aggregates independently; the two
ledgers must agree.  Likewise, flowlet switches and down-member
re-hashes are counted live in the routing hot path and re-booked by the
harvest from the bundle's own totals.
"""

import pytest

from repro.api import SweepRequest, run_sweep
from repro.experiments.scenarios import ScenarioConfig

DURATION = 4.0


def _configs():
    return [
        ScenarioConfig(
            app="zoom",
            duration=DURATION,
            seed=0,
            limiter="common",
            multipath=2,
        ),
        ScenarioConfig(
            app="zoom",
            duration=DURATION,
            seed=1,
            limiter="common",
            multipath=2,
            flowlet_gap_s=0.01,
        ),
    ]


@pytest.fixture(scope="module")
def metered():
    """One serial metered multipath sweep shared by the cross-checks."""
    return run_sweep(SweepRequest.detection(_configs(), jobs=1, metrics=True))


class TestMultipathCounters:
    def test_member_offered_equals_parent_offered(self, metered):
        counters = metered.metrics["counters"]
        assert counters["netsim.multipath.parent_offered_total"] > 0
        assert (
            counters["netsim.multipath.parent_offered_total"]
            == counters["netsim.multipath.member_offered_total"]
        )

    def test_flowlet_switches_double_booked(self, metered):
        counters = metered.metrics["counters"]
        # The gap=0.01 cell must actually switch flows mid-test.
        assert counters["netsim.multipath.flowlet_switches"] > 0
        assert (
            counters["netsim.multipath.flowlet_switches"]
            == counters["netsim.multipath.flowlet_switches_total"]
        )

    def test_rehash_ledgers_agree(self, metered):
        counters = metered.metrics["counters"]
        # No member went down in these runs: both ledgers say zero.
        assert counters.get("netsim.multipath.rehashes", 0) == counters.get(
            "netsim.multipath.rehashes_total", 0
        )

    def test_member_gauge_exported(self, metered):
        gauges = metered.metrics["gauges"]
        assert gauges["netsim.multipath.members.lc"] == 2

    def test_member_drops_counted(self, metered):
        counters = metered.metrics["counters"]
        assert counters["netsim.multipath.member_drops"] >= 0

    def test_plain_sweep_books_no_multipath_counters(self):
        result = run_sweep(
            SweepRequest.detection(
                [
                    ScenarioConfig(
                        app="zoom",
                        duration=DURATION,
                        seed=0,
                        limiter="common",
                    )
                ],
                jobs=1,
                metrics=True,
            )
        )
        counters = result.metrics["counters"]
        multipath_keys = [
            key for key in counters if key.startswith("netsim.multipath.")
        ]
        assert multipath_keys == []
