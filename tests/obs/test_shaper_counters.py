"""Double-entry cross-checks for the shaper-zoo counters.

Each zoo mechanism keeps mechanism-specific aggregates
(``shaper_stats``) that the harvest books as ``netsim.<suffix>``
totals; the live hot-path counters (booked per event) must agree
exactly with the harvested aggregates.
"""

from repro.netsim.packet import DATA, Packet
from repro.netsim.qdisc import make_qdisc
from repro.obs import metrics as obs_metrics
from repro.obs.harvest import harvest_qdisc


def _drive(device, n=400, gap=0.0005, drain_every=5):
    now = 0.0
    for i in range(n):
        device.enqueue(
            Packet(f"f{i % 7}", DATA, i, 1500, dscp=i % 3 != 0), now
        )
        if i % drain_every == 0:
            device.dequeue(now)
        now += gap
    while True:
        got, wake = device.dequeue(now)
        if got is None:
            if wake is None or wake > now + 30.0:
                break
            now = wake


def _metered_run(name, **params):
    sink = obs_metrics.MetricsSink()
    with obs_metrics.use_sink(sink):
        device = make_qdisc(name, rate_bps=1e6, fifo_capacity=30_000, **params)
        _drive(device)
        harvest_qdisc(sink, device)
    return device, sink.snapshot()["counters"]


class TestShaperDoubleEntry:
    def test_red_early_drops(self):
        device, counters = _metered_run("red", seed=1)
        assert counters["netsim.red.early_drops"] > 0
        assert (
            counters["netsim.red.early_drops"]
            == counters["netsim.red.early_drops_total"]
            == device.tbf.early_drops
        )
        assert (
            counters["netsim.red.early_drop_bytes_total"]
            == device.tbf.early_drop_bytes
        )

    def test_ecn_marks(self):
        device, counters = _metered_run("ecn", seed=1)
        assert counters["netsim.red.ecn_marks"] > 0
        assert (
            counters["netsim.red.ecn_marks"]
            == counters["netsim.red.ecn_marks_total"]
            == device.tbf.ecn_marks
        )

    def test_codel_drops(self):
        device, counters = _metered_run("codel")
        assert counters["netsim.codel.drops"] > 0
        assert (
            counters["netsim.codel.drops"]
            == counters["netsim.codel.drops_total"]
            == device.tbf.codel_drops
        )

    def test_pie_early_drops(self):
        device, counters = _metered_run("pie", seed=1)
        assert counters["netsim.pie.early_drops"] > 0
        assert (
            counters["netsim.pie.early_drops"]
            == counters["netsim.pie.early_drops_total"]
            == device.tbf.early_drops
        )

    def test_dual_tbf_peak_deferrals(self):
        # A huge boost keeps the CIR bucket full of tokens, so the
        # small peak bucket is what defers dequeues.
        device, counters = _metered_run(
            "dual_tbf", rtt_s=0.01, peak_factor=2.0, boost_bytes=1_500_000
        )
        assert counters["netsim.tbf.peak_deferrals"] > 0
        assert (
            counters["netsim.tbf.peak_deferrals"]
            == counters["netsim.tbf.peak_deferrals_total"]
            == device.tbf.peak_deferrals
        )

    def test_conditional_trips(self):
        device, counters = _metered_run("conditional", trigger_bytes=30_000)
        assert device.tbf.tripped
        assert (
            counters["netsim.conditional.trips"]
            == counters["netsim.conditional.trips_total"]
            == 1
        )

    def test_drop_bytes_totals_match_queue_books(self):
        device, counters = _metered_run("red", seed=1)
        assert (
            counters["netsim.tbf.drops_bytes_total"] == device.tbf.drops_bytes
        )
        assert (
            counters["netsim.fifo.drops_bytes_total"]
            == device.fifo.drops_bytes
        )
