"""TC observability counters and their double-entry cross-check."""

import numpy as np
import pytest

from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.internet import SyntheticInternet
from repro.mlab.tables import annotation_table, traceroute_table
from repro.mlab.topology_construction import (
    TopologyConstructor,
    build_topology_from_tables,
)
from repro.mlab.traceroute import run_traceroute
from repro.obs import harvest_topology_database
from repro.obs import metrics as obs_metrics


def _records(internet, rng):
    return [
        run_traceroute(internet, server, client, rng)
        for client in internet.clients
        for server in internet.servers
    ]


@pytest.fixture
def stack():
    rng = np.random.default_rng(9)
    internet = SyntheticInternet(rng)
    return internet, AnnotationDatabase(internet), _records(internet, rng)


class TestCounters:
    def test_build_books_scans_and_pairs(self, stack):
        internet, annotations, records = stack
        sink = obs_metrics.MetricsSink()
        with obs_metrics.use_sink(sink):
            database = TopologyConstructor(annotations).build(records)
        counters = sink.snapshot()["counters"]
        assert counters["mlab.tc.rows_scanned"] >= len(records)
        assert counters["mlab.tc.pairs_found"] == len(database)
        assert "mlab.tc.entries_invalidated" not in counters

    def test_tables_path_books_row_scans(self, stack):
        internet, annotations, records = stack
        sink = obs_metrics.MetricsSink()
        with obs_metrics.use_sink(sink):
            database = build_topology_from_tables(
                traceroute_table(records, backend="columnar"),
                annotation_table(annotations, backend="columnar"),
            )
        counters = sink.snapshot()["counters"]
        assert counters["mlab.tc.rows_scanned"] > 0
        assert counters["mlab.tc.pairs_found"] == len(database)

    def test_double_entry_after_invalidations(self, stack):
        internet, annotations, records = stack
        sink = obs_metrics.MetricsSink()
        with obs_metrics.use_sink(sink):
            database = TopologyConstructor(annotations).build(records)
            dropped = 0
            last = None
            for key in list(database.entries)[:2]:
                for entry in list(database.entries[key]):
                    assert database.invalidate(entry)
                    dropped += 1
                    last = entry
            # A second invalidation of a gone entry must not book.
            assert not database.invalidate(last)
            harvest_topology_database(sink, database)
        assert dropped > 0
        snapshot = sink.snapshot()
        counters = snapshot["counters"]
        assert counters["mlab.tc.entries_invalidated"] == dropped
        assert counters["mlab.tc.entries_total"] == (
            counters["mlab.tc.pairs_found"]
            - counters["mlab.tc.entries_invalidated"]
        )
        assert snapshot["gauges"]["mlab.tc.destinations"] == \
            len(database.destinations)

    def test_disabled_sink_books_nothing(self, stack):
        internet, annotations, records = stack
        sink = obs_metrics.MetricsSink()
        with obs_metrics.use_sink(None):
            TopologyConstructor(annotations).build(records)
        assert sink.snapshot()["counters"] == {}
