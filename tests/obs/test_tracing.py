"""Span tracing: disabled no-ops, attribute capture, error annotation."""

import pytest

from repro.obs import MetricsSink, span, use_sink


class TestSpan:
    def test_disabled_span_yields_none_and_records_nothing(self):
        sink = MetricsSink()
        with span("work", key="value") as record:
            assert record is None
        assert sink.spans == []

    def test_enabled_span_records_name_attrs_duration(self):
        sink = MetricsSink()
        with use_sink(sink):
            with span("work", key="value") as record:
                record["attrs"]["extra"] = 1
        (recorded,) = sink.spans
        assert recorded["name"] == "work"
        assert recorded["attrs"]["key"] == "value"
        assert recorded["attrs"]["extra"] == 1
        assert recorded["duration_s"] >= 0.0

    def test_exception_is_annotated_and_reraised(self):
        sink = MetricsSink()
        with use_sink(sink):
            with pytest.raises(ValueError):
                with span("work"):
                    raise ValueError("boom")
        (recorded,) = sink.spans
        assert recorded["attrs"]["error"] == "ValueError"
        assert "duration_s" in recorded

    def test_explicit_error_attr_wins_over_exception_name(self):
        sink = MetricsSink()
        with use_sink(sink):
            with pytest.raises(ValueError):
                with span("work") as record:
                    record["attrs"]["error"] = "custom"
                    raise ValueError("boom")
        assert sink.spans[0]["attrs"]["error"] == "custom"
