"""Serial-vs-parallel determinism: the acceptance bar for the executor.

The same configs pushed through ``SweepExecutor(jobs=1)`` and
``jobs=4`` must yield byte-identical record streams -- per-cell RNGs
are derived from ``SeedSequence([config.seed, entropy])`` so no state
leaks across cells regardless of scheduling.
"""

import pytest

from repro.api import SweepRequest, run_sweep
from repro.experiments.scenarios import ScenarioConfig, seed_sweep
from repro.perf.bench import canonical_record

DURATION = 8.0


def _configs(n=4, limiter="common"):
    base = ScenarioConfig(app="zoom", limiter=limiter, duration=DURATION, seed=0)
    return list(seed_sweep(base, range(1, n + 1)))


def run_detection_sweep(configs, **kwargs):
    return run_sweep(SweepRequest.detection(configs, **kwargs)).results


def _canon(records):
    return [canonical_record(record) for record in records]


class TestSerialParallelEquivalence:
    def test_records_byte_identical(self):
        configs = _configs()
        serial = run_detection_sweep(configs, jobs=1)
        parallel = run_detection_sweep(configs, jobs=4)
        assert _canon(serial) == _canon(parallel)

    def test_records_byte_identical_under_fault_profile(self):
        configs = _configs(n=6)
        profile = "replay_abort=0.5"
        serial = run_detection_sweep(configs, jobs=1, fault_profile=profile)
        parallel = run_detection_sweep(configs, jobs=4, fault_profile=profile)
        assert _canon(serial) == _canon(parallel)
        # The profile must actually bite for the test to mean anything.
        statuses = [record.status for record in serial]
        assert "aborted" in statuses
        assert "ok" in statuses

    def test_entropy_changes_results(self):
        configs = _configs(n=2)
        base = run_detection_sweep(configs, jobs=1)
        other = run_detection_sweep(configs, jobs=1, entropy=1)
        assert _canon(base) != _canon(other)

    def test_order_of_configs_does_not_leak_state(self):
        configs = _configs()
        forward = run_detection_sweep(configs, jobs=1)
        backward = run_detection_sweep(list(reversed(configs)), jobs=1)
        assert _canon(forward) == list(reversed(_canon(backward)))

    def test_records_are_frozen(self):
        configs = _configs(n=1)
        (record,) = run_detection_sweep(configs, jobs=1)
        with pytest.raises(AttributeError):
            record.status = "tampered"
