"""Unit tests for the process-pool sweep executor."""

import os

import pytest

from repro.parallel import SweepExecutor, default_jobs
from repro.parallel.executor import fork_available


def _square(x):
    return x * x


def _identity(x):
    return x


class TestSweepExecutor:
    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_jobs_clamped_to_one(self):
        assert SweepExecutor(jobs=0).jobs == 1
        assert SweepExecutor(jobs=-3).jobs == 1

    def test_serial_map_preserves_order(self):
        executor = SweepExecutor(jobs=1)
        assert executor.map(_square, range(10)) == [x * x for x in range(10)]

    def test_parallel_map_preserves_order(self):
        executor = SweepExecutor(jobs=4)
        assert executor.map(_square, range(20)) == [x * x for x in range(20)]

    def test_empty_input(self):
        assert SweepExecutor(jobs=4).map(_square, []) == []

    def test_single_item_stays_serial(self):
        # One item never pays pool startup cost.
        assert SweepExecutor(jobs=8).map(_square, [7]) == [49]

    def test_unpicklable_task_falls_back_to_serial(self):
        executor = SweepExecutor(jobs=4)
        result = executor.map(lambda x: x + 1, range(5))
        assert result == [1, 2, 3, 4, 5]

    def test_unpicklable_items_fall_back_to_serial(self):
        executor = SweepExecutor(jobs=4)
        items = [lambda: 1, lambda: 2]
        result = executor.map(_identity, items)
        assert [f() for f in result] == [1, 2]

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_parallel_runs_in_child_processes(self):
        executor = SweepExecutor(jobs=2)
        pids = executor.map(_pid, range(4))
        if executor.jobs > 1:
            assert all(isinstance(pid, int) for pid in pids)


def _pid(_):
    return os.getpid()


class TestDefaultJobs:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_override_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_invalid_env_override_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert default_jobs() >= 1

    @pytest.mark.skipif(
        not hasattr(os, "sched_getaffinity"), reason="no sched_getaffinity"
    )
    def test_respects_cpu_affinity(self, monkeypatch):
        # The affinity mask (what cgroups/taskset actually grant) must
        # win over the raw machine-wide cpu count.
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == len(os.sched_getaffinity(0))


class TestOnResultCheckpointing:
    def test_serial_streaming_order(self):
        seen = []
        executor = SweepExecutor(jobs=1)
        results = executor.map(
            _square, range(5), on_result=lambda i, item, r: seen.append((i, item, r))
        )
        assert results == [x * x for x in range(5)]
        assert seen == [(i, i, i * i) for i in range(5)]

    def test_parallel_streaming_order(self):
        seen = []
        executor = SweepExecutor(jobs=4)
        results = executor.map(
            _square, range(8), on_result=lambda i, item, r: seen.append((i, item, r))
        )
        assert results == [x * x for x in range(8)]
        assert seen == [(i, i, i * i) for i in range(8)]

    def test_fallback_still_fires_callback(self):
        # Unpicklable task -> serial fallback; callback must still see
        # every result.
        seen = []
        executor = SweepExecutor(jobs=4)
        executor.map(
            lambda x: x + 1, range(3), on_result=lambda i, item, r: seen.append(r)
        )
        assert seen == [1, 2, 3]
