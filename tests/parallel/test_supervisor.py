"""Unit tests for the supervising dispatcher behind SweepExecutor.map.

Tasks here are picklable builtins (``int``, ``abs``, ``time.sleep``,
``eval``) so the pool path engages without any simulation cost; worker
deaths are induced with pinned :class:`ChaosProfile` seeds whose
schedules are pure SHA-256 draws and therefore machine-independent.
"""

import os
import signal
import time

import pytest

from repro.faults import ChaosProfile
from repro.obs import MetricsSink, use_sink
from repro.parallel import (
    CellFailure,
    SweepCellError,
    SweepExecutor,
    SweepInterrupted,
)

#: kill=0.6, seed=78: cell 1 dies on attempt 0 and only attempt 0;
#: cells 0, 2, 3 are untouched (asserted in test_chaos_harness).
DIE_ONCE = ChaosProfile(kill=0.6, seed=78)


def _collector():
    deliveries = []

    def on_result(index, item, result):
        deliveries.append((index, item, result))

    return deliveries, on_result


class TestQuarantine:
    def test_pool_quarantines_deterministic_raise_early(self):
        # int("oops") raises the same ValueError text on every attempt,
        # so the second identical failure quarantines without burning
        # the rest of the (deliberately large) retry budget.
        executor = SweepExecutor(2, max_cell_retries=5)
        deliveries, on_result = _collector()
        results = executor.map(
            int, ["1", "2", "oops", "4"], on_result=on_result
        )
        assert results[:2] == [1, 2] and results[3] == 4
        failure = results[2]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "exception"
        assert failure.attempts == 2
        assert "invalid literal" in failure.error
        # on_result never fires for a quarantined cell, and fires
        # exactly once, in order, for everything else.
        assert deliveries == [(0, "1", 1), (1, "2", 2), (3, "4", 4)]

    def test_serial_quarantines_inline(self):
        results = SweepExecutor(1).map(int, ["1", "bad"])
        assert results[0] == 1
        assert isinstance(results[1], CellFailure)
        assert results[1].attempts == 1

    def test_strict_pool_raises_sweep_cell_error(self):
        with pytest.raises(SweepCellError) as excinfo:
            SweepExecutor(2, strict=True).map(int, ["1", "2", "oops", "4"])
        assert excinfo.value.failure.index == 2

    def test_strict_serial_reraises_the_original_exception(self):
        # The historical pre-supervision serial behaviour.
        with pytest.raises(ValueError):
            SweepExecutor(1, strict=True).map(int, ["1", "oops"])


class TestWorkerDeathRecovery:
    def test_killed_worker_respawns_and_cell_retries(self):
        executor = SweepExecutor(2, chaos_profile=DIE_ONCE)
        deliveries, on_result = _collector()
        with use_sink(MetricsSink()) as sink:
            results = executor.map(abs, [0, -1, -2, -3], on_result=on_result)
        assert results == [0, 1, 2, 3]
        assert deliveries == [(0, 0, 0), (1, -1, 1), (2, -2, 2), (3, -3, 3)]
        assert sink.counters["parallel.worker_deaths"] == 1
        assert sink.counters["parallel.cell_retries"] == 1
        assert "parallel.cells_quarantined" not in sink.counters

    def test_unrecoverable_cell_becomes_worker_death_failure(self):
        # kill=1.0 murders every attempt of every cell; each cell burns
        # its full budget (worker deaths never look deterministic) and
        # quarantines.  The pool survives on its restart budget.
        executor = SweepExecutor(
            2,
            chaos_profile=ChaosProfile(kill=1.0, seed=1),
            max_cell_retries=1,
            max_worker_restarts=16,
        )
        results = executor.map(abs, [0, -1])
        for failure in results:
            assert isinstance(failure, CellFailure)
            assert failure.kind == "worker_death"
            assert failure.attempts == 2


class TestTimeoutWatchdog:
    def test_hung_cell_is_killed_and_quarantined(self):
        executor = SweepExecutor(2, cell_timeout=0.5, max_cell_retries=0)
        with use_sink(MetricsSink()) as sink:
            results = executor.map(time.sleep, [0.0, 30.0])
        assert results[0] is None  # time.sleep's genuine return value
        failure = results[1]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "timeout"
        assert failure.attempts == 1
        assert sink.counters["parallel.cell_timeouts"] == 1
        # A watchdog kill charges the cell, not the restart budget.
        assert "parallel.worker_deaths" not in sink.counters

    def test_timeout_retries_before_quarantining(self):
        executor = SweepExecutor(2, cell_timeout=0.3, max_cell_retries=1)
        with use_sink(MetricsSink()) as sink:
            results = executor.map(time.sleep, [0.0, 30.0])
        assert results[1].attempts == 2
        assert sink.counters["parallel.cell_timeouts"] == 2


class TestSerialFallbacks:
    def test_unpicklable_result_finishes_serially_exactly_once(self):
        # eval("lambda: 2") builds a result that cannot cross the
        # process boundary; the worker reports it and the parent
        # recomputes the cell (and any remainder) serially.
        executor = SweepExecutor(2)
        deliveries, on_result = _collector()
        results = executor.map(
            eval, ["1+1", "lambda: 2", "3+3"], on_result=on_result
        )
        assert results[0] == 2 and results[2] == 6
        assert callable(results[1]) and results[1]() == 2
        assert sorted(index for index, _, _ in deliveries) == [0, 1, 2]

    def test_unpicklable_task_probes_to_serial(self):
        executor = SweepExecutor(4)
        results = executor.map(lambda x: x * 2, [1, 2, 3])
        assert results == [2, 4, 6]


class TestGracefulDrain:
    def test_serial_drain_returns_partial_prefix(self):
        deliveries, on_result = _collector()

        def interrupt_after_first(index, item, result):
            on_result(index, item, result)
            os.kill(os.getpid(), signal.SIGINT)

        with pytest.raises(SweepInterrupted) as excinfo:
            SweepExecutor(1).map(
                abs, [0, -1, -2], on_result=interrupt_after_first
            )
        exc = excinfo.value
        assert exc.results == [0, None, None]
        assert exc.completed == 1
        assert deliveries == [(0, 0, 0)]

    def test_pool_drain_finishes_in_flight_cells_exactly_once(self):
        deliveries, on_result = _collector()

        def interrupt_on_first_delivery(index, item, result):
            on_result(index, item, result)
            if len(deliveries) == 1:
                os.kill(os.getpid(), signal.SIGINT)

        items = [0.2] * 6
        with pytest.raises(SweepInterrupted) as excinfo:
            SweepExecutor(2).map(
                time.sleep, items, on_result=interrupt_on_first_delivery
            )
        exc = excinfo.value
        # In-flight cells finished; never-dispatched cells stayed None.
        assert 1 <= exc.completed < len(items)
        indices = [index for index, _, _ in deliveries]
        assert len(indices) == len(set(indices)) == exc.completed

    def test_signal_handlers_are_restored(self):
        before = signal.getsignal(signal.SIGINT)
        SweepExecutor(1).map(abs, [1, 2])
        assert signal.getsignal(signal.SIGINT) is before


class TestRestartBudgetGauge:
    def test_budget_published_on_start_and_after_worker_death(self):
        executor = SweepExecutor(2, chaos_profile=DIE_ONCE,
                                 max_worker_restarts=5)
        with use_sink(MetricsSink()) as sink:
            results = executor.map(abs, [0, -1, -2, -3])
        assert results == [0, 1, 2, 3]
        # One chaos-killed worker: the budget gauge drained by one.
        assert sink.counters["parallel.worker_deaths"] == 1
        assert sink.gauges["parallel.restart_budget_remaining"] == 4.0

    def test_budget_gauge_never_goes_negative(self):
        executor = SweepExecutor(
            2,
            chaos_profile=ChaosProfile(kill=1.0, seed=1),
            max_cell_retries=0,
            max_worker_restarts=1,
        )
        with use_sink(MetricsSink()) as sink:
            executor.map(abs, [0, -1, -2, -3])
        assert sink.gauges["parallel.restart_budget_remaining"] == 0.0
