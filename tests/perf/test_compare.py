"""BENCH_netsim.json versioning: comparable runs diff, mismatches refuse."""

import json

import pytest

from repro.perf import (
    SchemaMismatchError,
    compare_benchmarks,
    fidelity_gate_configs,
    run_benchmarks,
)
from repro.perf.bench import BENCH_SCHEMA_VERSION, FIDELITY_GATE_DURATION


def _payload(schema_version=BENCH_SCHEMA_VERSION, quick=True, wall=2.0,
             fingerprint="fp1"):
    return {
        "schema": f"BENCH_netsim/{schema_version}",
        "schema_version": schema_version,
        "code_fingerprint": fingerprint,
        "quick": quick,
        "workloads": {
            "single_replay": {"wall_s": wall, "events": 1000},
            "detection_sweep": {
                "serial_wall_s": wall * 10,
                "parallel_wall_s": wall * 4,
                "cells": 27,
            },
        },
    }


class TestCompareBenchmarks:
    def test_matching_schemas_diff_wall_fields(self):
        report = compare_benchmarks(_payload(wall=2.0), _payload(wall=1.0))
        deltas = report["deltas"]
        assert deltas["single_replay.wall_s"]["speedup"] == pytest.approx(2.0)
        assert deltas["detection_sweep.serial_wall_s"]["baseline_s"] == 20.0
        # Non-wall fields never appear in the diff.
        assert "single_replay.events" not in deltas
        assert "detection_sweep.cells" not in deltas

    def test_fingerprints_reported_not_refused(self):
        report = compare_benchmarks(
            _payload(fingerprint="old"), _payload(fingerprint="new")
        )
        assert report["baseline_fingerprint"] == "old"
        assert report["current_fingerprint"] == "new"

    def test_schema_version_mismatch_refused(self):
        with pytest.raises(SchemaMismatchError, match="refusing to diff"):
            compare_benchmarks(
                _payload(schema_version=BENCH_SCHEMA_VERSION - 1), _payload()
            )

    def test_unversioned_baseline_refused(self):
        legacy = _payload()
        del legacy["schema_version"]
        with pytest.raises(SchemaMismatchError, match="predates"):
            compare_benchmarks(legacy, _payload())

    def test_quick_vs_full_refused(self):
        with pytest.raises(SchemaMismatchError, match="quick"):
            compare_benchmarks(_payload(quick=True), _payload(quick=False))

    def test_missing_workload_in_baseline_is_skipped(self):
        baseline = _payload()
        del baseline["workloads"]["single_replay"]
        report = compare_benchmarks(baseline, _payload())
        assert "single_replay.wall_s" not in report["deltas"]
        assert "detection_sweep.serial_wall_s" in report["deltas"]


class TestCommittedBaseline:
    def test_repo_baseline_is_current_schema_and_quick(self):
        # CI's perf-smoke runs --quick --compare BENCH_netsim.json; a
        # stale committed baseline would make every CI run refuse.
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_netsim.json"
        baseline = json.loads(path.read_text())
        assert baseline["schema_version"] == BENCH_SCHEMA_VERSION
        assert baseline["quick"] is True
        assert baseline["determinism_ok"] is True
        for name in ("fluid_replay", "fluid_validation"):
            assert name in baseline["workloads"], name
        gate = baseline["workloads"]["fluid_validation"]
        assert gate["verdict_flips"] == []
        assert gate["wild_verdict_flips"] == []
        assert gate["hybrid_deterministic"] is True
        assert gate["events_reduction"] >= 5.0


class TestWorkloadSelection:
    def test_unknown_only_name_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_benchmarks(quick=True, only=("bogus",))

    def test_gate_grid_is_pinned(self):
        configs = fidelity_gate_configs()
        # The grid must stay at the paper's 60 s duration and keep the
        # knife-edge congestion factors (0.95/1.05) out: packet-mode
        # verdicts flip seed-to-seed there, so they cannot gate.
        assert len(configs) == 14
        assert len(set(configs)) == len(configs)
        assert all(c.duration == FIDELITY_GATE_DURATION for c in configs)
        assert all(c.congestion_factor in (0.2, 1.15) for c in configs)
        assert all(c.fidelity == "packet" for c in configs)
