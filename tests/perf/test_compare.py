"""BENCH_netsim.json versioning: comparable runs diff, mismatches refuse."""

import pytest

from repro.perf import SchemaMismatchError, compare_benchmarks
from repro.perf.bench import BENCH_SCHEMA_VERSION


def _payload(schema_version=BENCH_SCHEMA_VERSION, quick=True, wall=2.0,
             fingerprint="fp1"):
    return {
        "schema": f"BENCH_netsim/{schema_version}",
        "schema_version": schema_version,
        "code_fingerprint": fingerprint,
        "quick": quick,
        "workloads": {
            "single_replay": {"wall_s": wall, "events": 1000},
            "detection_sweep": {
                "serial_wall_s": wall * 10,
                "parallel_wall_s": wall * 4,
                "cells": 27,
            },
        },
    }


class TestCompareBenchmarks:
    def test_matching_schemas_diff_wall_fields(self):
        report = compare_benchmarks(_payload(wall=2.0), _payload(wall=1.0))
        deltas = report["deltas"]
        assert deltas["single_replay.wall_s"]["speedup"] == pytest.approx(2.0)
        assert deltas["detection_sweep.serial_wall_s"]["baseline_s"] == 20.0
        # Non-wall fields never appear in the diff.
        assert "single_replay.events" not in deltas
        assert "detection_sweep.cells" not in deltas

    def test_fingerprints_reported_not_refused(self):
        report = compare_benchmarks(
            _payload(fingerprint="old"), _payload(fingerprint="new")
        )
        assert report["baseline_fingerprint"] == "old"
        assert report["current_fingerprint"] == "new"

    def test_schema_version_mismatch_refused(self):
        with pytest.raises(SchemaMismatchError, match="refusing to diff"):
            compare_benchmarks(
                _payload(schema_version=BENCH_SCHEMA_VERSION - 1), _payload()
            )

    def test_unversioned_baseline_refused(self):
        legacy = _payload()
        del legacy["schema_version"]
        with pytest.raises(SchemaMismatchError, match="predates"):
            compare_benchmarks(legacy, _payload())

    def test_quick_vs_full_refused(self):
        with pytest.raises(SchemaMismatchError, match="quick"):
            compare_benchmarks(_payload(quick=True), _payload(quick=False))

    def test_missing_workload_in_baseline_is_skipped(self):
        baseline = _payload()
        del baseline["workloads"]["single_replay"]
        report = compare_benchmarks(baseline, _payload())
        assert "single_replay.wall_s" not in report["deltas"]
        assert "detection_sweep.serial_wall_s" in report["deltas"]
