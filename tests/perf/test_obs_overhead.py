"""The zero-overhead-when-disabled contract of repro.obs.

Two guards: (1) while metrics are disabled the hot path must never
touch the sink at all -- proven by swapping in a sink that raises on
any call; (2) a sanity timing bound with a deliberately generous
margin (the strict <=2% budget is enforced by ``repro.perf --quick``
against BENCH_netsim.json, not by a wall-clock test that would flake
under CI load).
"""

import time

from repro import obs
from repro.api import SweepRequest, run_sweep
from repro.experiments.scenarios import ScenarioConfig
from repro.obs import metrics as obs_metrics

DURATION = 4.0


def _config():
    return ScenarioConfig(app="netflix", duration=DURATION, seed=0)


class _BoobyTrappedSink:
    """Explodes on any metrics call; `on` stays False like NULL_SINK."""

    on = False

    def _boom(self, *args, **kwargs):
        raise AssertionError("metrics sink touched while disabled")

    inc = set_gauge = observe = add_span = merge = snapshot = _boom


class TestDisabledPath:
    def test_metrics_are_off_by_default(self):
        assert not obs.enabled()
        assert obs_metrics.SINK is obs_metrics.NULL_SINK

    def test_disabled_sweep_never_touches_the_sink(self, monkeypatch):
        # Replace the null sink with a booby trap: any unguarded
        # SINK.inc()/observe() on the disabled path raises immediately.
        monkeypatch.setattr(obs_metrics, "SINK", _BoobyTrappedSink())
        assert not obs_metrics.ENABLED
        result = run_sweep(SweepRequest.detection([_config()], jobs=1))
        assert len(result.results) == 1

    def test_disabled_overhead_is_small(self):
        configs = [_config()]

        def wall(metrics):
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                run_sweep(SweepRequest.detection(configs, jobs=1, metrics=metrics))
                best = min(best, time.perf_counter() - start)
            return best

        disabled = wall(None)
        enabled = wall(True)
        # Generous bound -- catches an accidental always-on code path,
        # not a 2% regression (repro.perf owns the tight budget).
        assert disabled < enabled * 1.5 + 0.5
