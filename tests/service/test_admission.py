"""Admission control: token-bucket math and the accept/reject gate."""

import pytest

from repro.netsim.token_bucket import TokenBucketFilter
from repro.service.admission import AdmissionController, RequestTokenBucket


class TestRequestTokenBucket:
    def test_starts_full_and_replenishes_continuously(self):
        bucket = RequestTokenBucket(rate=2.0, burst=4.0)
        assert bucket.tokens(0.0) == 4.0
        for _ in range(4):
            assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # 1 second at 2 tokens/s -> 2 tokens back.
        assert bucket.tokens(1.0) == pytest.approx(2.0)
        assert bucket.try_take(1.0)

    def test_burst_caps_accumulation(self):
        bucket = RequestTokenBucket(rate=10.0, burst=3.0)
        assert bucket.tokens(1000.0) == 3.0

    def test_non_monotonic_now_is_ignored(self):
        bucket = RequestTokenBucket(rate=1.0, burst=2.0)
        bucket.try_take(10.0)
        assert bucket.tokens(5.0) == pytest.approx(1.0)  # no time travel

    def test_exact_rate_never_starves(self):
        # A tenant submitting at precisely its configured rate must be
        # admitted forever (the 1e-9 tolerance the netsim TBF uses).
        bucket = RequestTokenBucket(rate=3.0, burst=1.0)
        bucket.try_take(0.0)
        t = 0.0
        for _ in range(1000):
            t += 1.0 / 3.0
            assert bucket.try_take(t)

    def test_mirrors_netsim_tbf_replenish_arithmetic(self):
        # Same rate/burst, same timestamps, same drained amount -> the
        # same balances as the paper-model TBF (tokens are bytes there,
        # requests here; 800 bps = 100 bytes/s).
        tbf = TokenBucketFilter(800.0, 400.0, 1600)
        bucket = RequestTokenBucket(rate=100.0, burst=400.0)
        bucket.tokens(0.0)  # align the replenish baselines at t=0
        tbf._tokens -= 390.0
        bucket._tokens -= 390.0
        for now in (0.5, 0.7, 1.9, 2.0, 5.0):
            assert bucket.tokens(now) == pytest.approx(tbf.tokens(now))

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0, "burst": 1.0},
        {"rate": 1.0, "burst": 0.0},
        {"rate": -1.0, "burst": 1.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RequestTokenBucket(**kwargs)


class TestAdmissionController:
    def test_queue_bound_rejects_with_reason(self):
        controller = AdmissionController(max_queue=2)
        assert controller.admit("t", 0, 0.0) == (True, "")
        assert controller.admit("t", 1, 0.0) == (True, "")
        ok, reason = controller.admit("t", 2, 0.0)
        assert not ok and reason == "queue_full"

    def test_tenant_rate_cap_is_per_tenant(self):
        controller = AdmissionController(
            max_queue=100, tenant_rate=1.0, tenant_burst=2.0
        )
        assert controller.admit("a", 0, 0.0)[0]
        assert controller.admit("a", 0, 0.0)[0]
        ok, reason = controller.admit("a", 0, 0.0)
        assert not ok and reason == "tenant_rate"
        # Tenant b has its own untouched bucket.
        assert controller.admit("b", 0, 0.0)[0]

    def test_full_queue_does_not_charge_tenant_tokens(self):
        controller = AdmissionController(
            max_queue=1, tenant_rate=1.0, tenant_burst=1.0
        )
        ok, reason = controller.admit("a", 1, 0.0)
        assert not ok and reason == "queue_full"
        # The bucket still holds its token: with room, the same instant
        # admits.
        assert controller.admit("a", 0, 0.0) == (True, "")

    def test_uncapped_when_no_tenant_rate(self):
        controller = AdmissionController(max_queue=10)
        for _ in range(10):
            assert controller.admit("t", 0, 0.0) == (True, "")
        assert controller.bucket("t") is None
