"""ServiceCore lifecycle: every submission ends in exactly one response."""

import pytest

from repro.service.core import ServiceConfig, ServiceCore
from repro.service.degradation import CircuitBreaker, ServiceState
from repro.service.protocol import Status, parse_submission


def submission(**overrides):
    raw = {
        "tenant": "carrier-a",
        "client": "client-1",
        "app": "netflix",
        "deadline_s": 30,
        "knobs": {"limiter": "common", "seed": 4, "duration": 8.0},
    }
    knobs = overrides.pop("knobs", None)
    raw.update(overrides)
    if knobs:
        raw["knobs"] = dict(raw["knobs"], **knobs)
    return parse_submission(raw)


def config(**overrides):
    kwargs = dict(
        max_queue=8, batch_max=2, max_concurrent_batches=2,
        degraded_queue=4, shed_queue=6,
        breaker_threshold=2, breaker_cooldown_s=10.0,
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


def ok_outcomes(batch, verdict=None):
    return [("ok", verdict or {"detected": True})] * len(batch.requests)


class TestHappyPath:
    def test_submit_dispatch_verdict(self):
        core = ServiceCore(config())
        rid = core.submit(submission(), now=0.0)
        assert core.take_responses() == []  # queued, nothing terminal yet
        batch = core.next_batch(now=1.0)
        assert [r.id for r in batch.requests] == [rid]
        core.batch_done(batch, ok_outcomes(batch), now=2.0)
        (resp,) = core.take_responses()
        assert resp.id == rid and resp.status == Status.VERDICT
        assert resp.queued_s == pytest.approx(1.0)
        assert resp.service_s == pytest.approx(1.0)
        assert not resp.cached

    def test_verdict_is_memoized_for_identical_scenarios(self):
        core = ServiceCore(config())
        core.submit(submission(), now=0.0)
        batch = core.next_batch(now=0.0)
        core.batch_done(batch, ok_outcomes(batch, {"detected": False}), now=1.0)
        core.take_responses()
        # Identical scenario from another client: served from the memo,
        # no queue slot consumed.
        rid2 = core.submit(submission(client="client-2"), now=2.0)
        (resp,) = core.take_responses()
        assert resp.id == rid2 and resp.status == Status.VERDICT
        assert resp.cached and resp.verdict == {"detected": False}
        assert len(core.queue) == 0

    def test_batch_groups_up_to_batch_max(self):
        core = ServiceCore(config(batch_max=2))
        for seed in range(3):
            core.submit(submission(knobs={"seed": seed}), now=0.0)
        first = core.next_batch(now=0.0)
        second = core.next_batch(now=0.0)
        assert len(first.requests) == 2 and len(second.requests) == 1

    def test_concurrency_bound_blocks_dispatch(self):
        core = ServiceCore(config(batch_max=1, max_concurrent_batches=1))
        for seed in range(2):
            core.submit(submission(knobs={"seed": seed}), now=0.0)
        batch = core.next_batch(now=0.0)
        assert batch is not None
        assert core.next_batch(now=0.0) is None  # saturated
        core.batch_done(batch, ok_outcomes(batch), now=1.0)
        assert core.next_batch(now=1.0) is not None


class TestRejections:
    def test_draining_rejects_everything(self):
        core = ServiceCore(config())
        core.begin_drain(now=0.0)
        core.submit(submission(), now=0.0)
        (resp,) = core.take_responses()
        assert resp.status == Status.REJECTED_OVERLOAD
        assert resp.reason == "draining"

    def test_shedding_rejects_fresh_misses(self):
        core = ServiceCore(config())
        core.governor.update(0.0, 10, 0.0)
        assert core.governor.state == ServiceState.SHEDDING
        core.submit(submission(), now=0.0)
        (resp,) = core.take_responses()
        assert resp.status == Status.REJECTED_OVERLOAD
        assert resp.reason == "shedding"
        assert resp.state == ServiceState.SHEDDING

    def test_degraded_serves_cache_hits_only(self):
        core = ServiceCore(config())
        # Populate the memo while healthy.
        core.submit(submission(), now=0.0)
        batch = core.next_batch(now=0.0)
        core.batch_done(batch, ok_outcomes(batch), now=0.1)
        core.take_responses()
        core.governor.update(1.0, 5, 0.0)
        assert core.governor.state == ServiceState.DEGRADED
        # Cache hit: a VERDICT even while degraded.
        core.submit(submission(client="c2"), now=1.0)
        # Cache miss: rejected.
        core.submit(submission(knobs={"seed": 99}), now=1.0)
        hit, miss = core.take_responses()
        assert hit.status == Status.VERDICT and hit.cached
        assert miss.status == Status.REJECTED_OVERLOAD
        assert miss.reason == "degraded"

    def test_queue_full_reason(self):
        core = ServiceCore(config(max_queue=1))
        core.submit(submission(knobs={"seed": 0}), now=0.0)
        core.submit(submission(knobs={"seed": 1}), now=0.0)
        (resp,) = core.take_responses()
        assert resp.status == Status.REJECTED_OVERLOAD
        assert resp.reason == "queue_full"

    def test_tenant_rate_reason(self):
        core = ServiceCore(config(tenant_rate=1.0, tenant_burst=1.0))
        core.submit(submission(knobs={"seed": 0}), now=0.0)
        core.submit(submission(knobs={"seed": 1}), now=0.0)
        (resp,) = core.take_responses()
        assert resp.reason == "tenant_rate"


class TestDeadlines:
    def test_expired_in_queue_never_touches_a_worker(self):
        core = ServiceCore(config())
        rid = core.submit(submission(deadline_s=5), now=0.0)
        assert core.next_batch(now=6.0) is None
        (resp,) = core.take_responses()
        assert resp.id == rid and resp.status == Status.DEADLINE_EXCEEDED
        assert resp.reason == "expired in queue"
        assert resp.queued_s == pytest.approx(6.0)

    def test_completed_after_deadline(self):
        core = ServiceCore(config())
        rid = core.submit(submission(deadline_s=5), now=0.0)
        batch = core.next_batch(now=1.0)
        core.batch_done(batch, ok_outcomes(batch), now=7.0)
        (resp,) = core.take_responses()
        assert resp.id == rid and resp.status == Status.DEADLINE_EXCEEDED
        assert resp.reason == "completed after deadline"
        # The verdict still landed in the memo: the work is not wasted.
        core.submit(submission(client="c2", deadline_s=5), now=8.0)
        (cached,) = core.take_responses()
        assert cached.status == Status.VERDICT and cached.cached

    def test_cell_timeout_is_max_remaining_budget(self):
        core = ServiceCore(config(batch_max=2))
        core.submit(submission(deadline_s=10, knobs={"seed": 0}), now=0.0)
        core.submit(submission(deadline_s=30, knobs={"seed": 1}), now=0.0)
        batch = core.next_batch(now=4.0)
        assert batch.cell_timeout == pytest.approx(26.0)


class TestBreaker:
    def test_engine_failures_trip_and_block_dispatch(self):
        core = ServiceCore(config(breaker_threshold=2, batch_max=1))
        for seed in range(3):
            core.submit(submission(knobs={"seed": seed}), now=0.0)
        for _ in range(2):
            batch = core.next_batch(now=0.0)
            core.batch_failed(batch, "engine blew up", now=0.5)
        responses = core.take_responses()
        assert [r.status for r in responses] == [Status.FAILED, Status.FAILED]
        assert core.breaker.state == CircuitBreaker.OPEN
        assert core.next_batch(now=1.0) is None  # blocked, work stays queued
        assert len(core.queue) == 1
        # After cooldown the half-open probe goes through and a success
        # closes the breaker.
        batch = core.next_batch(now=11.0)
        assert batch is not None
        core.batch_done(batch, ok_outcomes(batch), now=11.5)
        assert core.breaker.state == CircuitBreaker.CLOSED


class TestDrainResume:
    def test_pending_payloads_carry_remaining_budget(self):
        core = ServiceCore(config())
        core.submit(submission(deadline_s=30, knobs={"seed": 0}), now=0.0)
        core.begin_drain(now=10.0)
        payloads = core.pending_payloads(now=10.0)
        assert len(payloads) == 1
        assert payloads[0]["remaining_s"] == pytest.approx(20.0)
        assert payloads[0]["submission"]["tenant"] == "carrier-a"
        assert len(core.queue) == 0

    def test_resume_requeues_and_completes(self):
        source = ServiceCore(config())
        rid = source.submit(submission(deadline_s=30), now=0.0)
        payloads = source.pending_payloads(now=5.0)

        fresh = ServiceCore(config())
        assert fresh.resume(payloads, now=100.0) == 1
        batch = fresh.next_batch(now=100.0)
        assert [r.id for r in batch.requests] == [rid]
        # Downtime did not charge the budget: 25 s remain from t=100.
        assert batch.requests[0].deadline_at == pytest.approx(125.0)
        fresh.batch_done(batch, ok_outcomes(batch), now=101.0)
        (resp,) = fresh.take_responses()
        assert resp.id == rid and resp.status == Status.VERDICT

    def test_resume_expires_spent_budgets(self):
        core = ServiceCore(config())
        payloads = [{
            "id": "req-x",
            "submission": submission().as_dict(),
            "remaining_s": 0.0,
        }]
        assert core.resume(payloads, now=0.0) == 0
        (resp,) = core.take_responses()
        assert resp.id == "req-x"
        assert resp.status == Status.DEADLINE_EXCEEDED
        assert resp.reason == "expired while down"


class TestAccountingInvariant:
    def test_malformed_gets_a_terminal_failed(self):
        core = ServiceCore(config())
        rid = core.malformed(None, "bad json", tenant="t")
        (resp,) = core.take_responses()
        assert resp.id == rid and resp.status == Status.FAILED
        assert "malformed submission" in resp.reason

    def test_every_submission_terminates_exactly_once(self):
        # Mixed fates in one run: verdicts, rejects, expiries, failures.
        core = ServiceCore(config(max_queue=3, batch_max=1))
        ids = []
        for seed in range(5):
            ids.append(core.submit(
                submission(knobs={"seed": seed}, deadline_s=10), now=0.0))
        batch = core.next_batch(now=0.0)
        core.batch_done(batch, ok_outcomes(batch), now=1.0)
        batch = core.next_batch(now=1.0)
        core.batch_failed(batch, "boom", now=2.0)
        core.tick(now=50.0)  # expire the remainder
        responses = core.take_responses()
        assert sorted(r.id for r in responses) == sorted(ids)
        assert sum(core.counts.values()) == len(ids)
        statuses = {r.id: r.status for r in responses}
        assert set(statuses.values()) == {
            Status.VERDICT, Status.FAILED,
            Status.REJECTED_OVERLOAD, Status.DEADLINE_EXCEEDED,
        }


class TestObservability:
    def test_gauges_and_counters_published(self):
        from repro.obs import MetricsSink, use_sink

        core = ServiceCore(config())
        with use_sink(MetricsSink()) as sink:
            core.submit(submission(), now=0.0)
            core.tick(now=0.0)
            assert sink.gauges["service.state"] == 0.0
            assert sink.gauges["service.queue_depth"] == 1.0
            batch = core.next_batch(now=0.0)
            assert sink.gauges["service.inflight"] == 1.0
            core.batch_done(batch, ok_outcomes(batch), now=0.5)
            core.governor.update(1.0, 10, 0.0)  # force SHEDDING
            core.submit(submission(knobs={"seed": 9}), now=1.0)
            core.tick(now=1.0)
        assert sink.counters["service.responses.VERDICT"] == 1
        assert sink.counters["service.responses.REJECTED_OVERLOAD"] == 1
        assert sink.counters["service.rejected.shedding"] == 1
        assert sink.gauges["service.state"] == 2.0
        assert sink.counters["service.batches"] == 1
