"""Governor state machine hysteresis and circuit-breaker transitions."""

import pytest

from repro.service.degradation import (
    CircuitBreaker,
    LatencyWindow,
    OverloadGovernor,
    ServiceState,
)


class TestLatencyWindow:
    def test_quantiles_over_rolling_window(self):
        window = LatencyWindow(size=4)
        assert window.quantile(0.99) == 0.0
        for value in (1.0, 2.0, 3.0, 4.0):
            window.observe(value)
        assert window.quantile(0.0) == 1.0
        assert window.quantile(0.99) == 4.0
        # Evicts the oldest (1.0): max stays, min moves.
        window.observe(0.5)
        assert window.quantile(0.0) == 0.5
        assert len(window) == 4

    def test_duplicate_values_evict_one_instance(self):
        window = LatencyWindow(size=2)
        window.observe(7.0)
        window.observe(7.0)
        window.observe(1.0)
        assert window.quantile(0.99) == 7.0


def governor(**overrides):
    kwargs = dict(
        degraded_queue=10, shed_queue=20,
        recover_fraction=0.5, recover_dwell_s=2.0,
    )
    kwargs.update(overrides)
    return OverloadGovernor(**kwargs)


class TestOverloadGovernor:
    def test_escalation_is_immediate(self):
        gov = governor()
        assert gov.update(0.0, 0, 0.0) == ServiceState.HEALTHY
        assert gov.update(1.0, 10, 0.0) == ServiceState.DEGRADED
        assert gov.update(1.1, 20, 0.0) == ServiceState.SHEDDING

    def test_healthy_to_shedding_skips_degraded(self):
        gov = governor()
        assert gov.update(0.0, 25, 0.0) == ServiceState.SHEDDING

    def test_recovery_needs_calm_plus_dwell(self):
        gov = governor()
        gov.update(0.0, 12, 0.0)
        assert gov.state == ServiceState.DEGRADED
        # Below trip but above recover_fraction * trip: not calm.
        assert gov.update(1.0, 8, 0.0) == ServiceState.DEGRADED
        # Calm (5 <= 0.5*10) but dwell not yet served.
        assert gov.update(2.0, 5, 0.0) == ServiceState.DEGRADED
        assert gov.update(3.0, 5, 0.0) == ServiceState.DEGRADED
        # Dwell complete.
        assert gov.update(4.0, 5, 0.0) == ServiceState.HEALTHY

    def test_pressure_spike_resets_the_dwell(self):
        gov = governor()
        gov.update(0.0, 12, 0.0)
        gov.update(1.0, 4, 0.0)  # calm streak starts
        gov.update(2.0, 8, 0.0)  # not calm: streak broken
        gov.update(3.0, 4, 0.0)  # streak restarts
        assert gov.update(4.0, 4, 0.0) == ServiceState.DEGRADED
        assert gov.update(5.5, 4, 0.0) == ServiceState.HEALTHY

    def test_recovery_steps_down_one_state_per_dwell(self):
        gov = governor()
        gov.update(0.0, 30, 0.0)
        assert gov.state == ServiceState.SHEDDING
        gov.update(1.0, 0, 0.0)
        assert gov.update(3.0, 0, 0.0) == ServiceState.DEGRADED
        # Another full dwell for the second step: the calm streak
        # restarts when the state changes (at t=3.0 -> observed t=4.0).
        assert gov.update(4.0, 0, 0.0) == ServiceState.DEGRADED
        assert gov.update(5.5, 0, 0.0) == ServiceState.DEGRADED
        assert gov.update(6.5, 0, 0.0) == ServiceState.HEALTHY

    def test_p99_criterion_trips_without_queue_depth(self):
        gov = governor(degraded_p99_s=1.0, shed_p99_s=5.0)
        assert gov.update(0.0, 0, 1.2) == ServiceState.DEGRADED
        assert gov.update(0.5, 0, 6.0) == ServiceState.SHEDDING

    def test_transitions_are_recorded_with_reasons(self):
        gov = governor()
        gov.update(0.0, 15, 0.0)
        gov.update(1.0, 0, 0.0)
        gov.update(3.5, 0, 0.0)
        states = [(old, new) for _t, old, new, _why in gov.transitions]
        assert states == [
            (ServiceState.HEALTHY, ServiceState.DEGRADED),
            (ServiceState.DEGRADED, ServiceState.HEALTHY),
        ]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OverloadGovernor(degraded_queue=10, shed_queue=5)
        with pytest.raises(ValueError):
            OverloadGovernor(degraded_queue=1, shed_queue=2,
                             recover_fraction=0.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)  # resets the streak
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(0.5)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1

    def test_open_blocks_until_cooldown_then_single_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allow_dispatch(5.0)
        assert breaker.allow_dispatch(10.5)  # the half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow_dispatch(10.6)  # one probe at a time

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow_dispatch(1.5)
        breaker.record_success(2.0)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow_dispatch(2.1)

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow_dispatch(1.5)
        breaker.record_failure(2.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        assert not breaker.allow_dispatch(2.5)
        assert breaker.allow_dispatch(3.5)
