"""SIGTERM drain against a live store: persist, restart, resume, complete.

The satellite acceptance test: a service killed mid-load finishes its
in-flight batches, persists the still-queued submissions to the store
ledger, and a restarted service resumes them -- with every submission
terminating exactly once and the resumed verdicts byte-identical to an
uninterrupted control run.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.core import ServiceConfig, ServiceCore
from repro.service.engine import SyntheticEngine
from repro.store import ExperimentStore

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")
SERVICE_S = 0.5  # synthetic mean cell time; min cell = 0.25 s
N_SUBMISSIONS = 10  # > in-flight capacity (2 batches x 4), so >=2 queue


def raw_submission(i):
    return {
        "id": f"req-{i:02d}",
        "tenant": "carrier-a",
        "client": f"client-{i % 3}",
        "app": "netflix",
        "deadline_s": 30,
        "knobs": {"limiter": "common", "seed": i, "duration": 8.0},
    }


def spawn_service(store_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--synthetic",
         "--synthetic-service-s", str(SERVICE_S),
         "--store", str(store_dir), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    banner = proc.stdout.readline()
    assert banner.startswith("serving on "), banner
    port = int(banner.rsplit(":", 1)[1])
    return proc, port


def connect(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=20)
    sock.settimeout(20)
    return sock, sock.makefile("rwb")


def send(stream, raw):
    stream.write((json.dumps(raw) + "\n").encode())
    stream.flush()


def read_responses_until_eof(stream):
    responses = []
    for line in stream:
        responses.append(json.loads(line))
    return responses


def finish(proc, sig=signal.SIGTERM, timeout=30):
    if proc.poll() is None:
        proc.send_signal(sig)
    out, err = proc.communicate(timeout=timeout)
    return proc.returncode, out, err


def canonical(verdict):
    return json.dumps(verdict, sort_keys=True)


class TestDrainWithStore:
    def test_sigterm_persists_queue_and_restart_completes_identically(
        self, tmp_path
    ):
        # --- Control: the same load, uninterrupted. ---------------------
        control_proc, control_port = spawn_service(tmp_path / "control")
        sock, stream = connect(control_port)
        try:
            for i in range(N_SUBMISSIONS):
                send(stream, raw_submission(i))
            control_verdicts = {}
            while len(control_verdicts) < N_SUBMISSIONS:
                response = json.loads(stream.readline())
                assert response["status"] == "VERDICT", response
                control_verdicts[response["id"]] = response["verdict"]
        finally:
            sock.close()
        code, _out, _err = finish(control_proc)
        assert code == 0

        # --- Interrupted run: SIGTERM while batches are in flight. ------
        store_dir = tmp_path / "interrupted"
        proc, port = spawn_service(store_dir)
        sock, stream = connect(port)
        submitted = set()
        try:
            for i in range(N_SUBMISSIONS):
                raw = raw_submission(i)
                send(stream, raw)
                submitted.add(raw["id"])
            # Well before the fastest possible cell (0.25 s) completes:
            # in-flight batches exist, and >= 2 submissions are queued.
            time.sleep(0.15)
            proc.send_signal(signal.SIGTERM)
            responses = read_responses_until_eof(stream)
        finally:
            sock.close()
        code, _out, err = finish(proc)
        assert code == 0, err
        served = {r["id"]: r for r in responses}
        assert all(r["status"] == "VERDICT" for r in served.values()), served

        # --- The drain persisted exactly the unserved remainder. --------
        store = ExperimentStore(store_dir)
        events = list(store.ledger_events("service_pending"))
        assert len(events) == 1
        pending = events[0]["pending"]
        pending_ids = {p["id"] for p in pending}
        assert pending_ids, "expected queued submissions at SIGTERM"
        # Exactly-once across the crash: served + persisted = submitted.
        assert served.keys() | pending_ids == submitted
        assert not served.keys() & pending_ids
        by_id = {f"req-{i:02d}": raw_submission(i) for i in range(N_SUBMISSIONS)}
        for payload in pending:
            assert 0.0 < payload["remaining_s"] < 30.0
            original = by_id[payload["id"]]
            # as_dict() may add defaulted fields (carrier); every field
            # the client sent must round-trip unchanged.
            for key, value in original.items():
                assert payload["submission"][key] == value

        # --- In-flight verdicts match the control run byte for byte. ----
        for rid, response in served.items():
            assert canonical(response["verdict"]) == canonical(
                control_verdicts[rid]
            )

        # --- A restarted service resumes and completes the remainder. ---
        restarted, _port = spawn_service(store_dir)
        deadline = time.time() + 20.0
        while time.time() < deadline:
            resumes = list(
                ExperimentStore(store_dir).ledger_events("service_resume")
            )
            if resumes:
                break
            time.sleep(0.1)
        assert resumes and resumes[0]["drain_id"] == events[0]["drain_id"]
        # Give the resumed batches time to finish, then drain.
        time.sleep(4.0 * SERVICE_S)
        code, _out, err = finish(restarted)
        assert code == 0, err
        assert f"resumed {len(pending_ids)} persisted submissions" in err
        assert f"VERDICT={len(pending_ids)}" in err, err

        # --- ...byte-identically: same core + engine path in-process. ---
        core = ServiceCore(ServiceConfig())
        assert core.resume(pending, now=0.0) == len(pending)
        engine = SyntheticEngine(mean_service_s=SERVICE_S, realtime=False)
        resumed_verdicts = {}
        while True:
            batch = core.next_batch(now=0.0)
            if batch is None:
                break
            core.batch_done(batch, engine.run(batch), now=0.0)
            for response in core.take_responses():
                assert response.status == "VERDICT"
                resumed_verdicts[response.id] = response.verdict
        assert resumed_verdicts.keys() == pending_ids
        for rid, verdict in resumed_verdicts.items():
            assert canonical(verdict) == canonical(control_verdicts[rid])

        # --- A second restart finds the drain consumed: resumes zero. ---
        again, _port = spawn_service(store_dir)
        time.sleep(0.2)
        code, _out, err = finish(again)
        assert code == 0
        assert "resumed" not in err
