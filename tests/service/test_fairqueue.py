"""Deficit round-robin: fairness, reactivation, removal, drain order."""

import pytest

from repro.service.fairqueue import DeficitRoundRobin


def drain(drr):
    out = []
    while True:
        entry = drr.pop()
        if entry is None:
            return out
        out.append(entry)


class TestDeficitRoundRobin:
    def test_equal_cost_tenants_interleave(self):
        drr = DeficitRoundRobin(quantum=1.0)
        for i in range(3):
            drr.push("a", f"a{i}", cost=1.0)
            drr.push("b", f"b{i}", cost=1.0)
        tenants = [tenant for tenant, _item in drain(drr)]
        assert tenants == ["a", "b", "a", "b", "a", "b"]

    def test_heavy_items_yield_proportionally_fewer_pops(self):
        # Tenant "big" submits items of cost 4, "small" of cost 1, with
        # quantum 2: per round small emits 2 items while big banks
        # deficit and emits one every other round -- work, not request
        # count, is equalized.
        drr = DeficitRoundRobin(quantum=2.0)
        for i in range(4):
            drr.push("big", f"B{i}", cost=4.0)
        for i in range(8):
            drr.push("small", f"s{i}", cost=1.0)
        order = [tenant for tenant, _ in drain(drr)]
        assert order.count("small") == 8 and order.count("big") == 4
        # While both tenants are backlogged (the first 10 pops, before
        # small runs dry), served *work* is equal: 8 small x cost 1
        # against 2 big x cost 4.
        head = order[:10]
        assert head.count("small") == 8
        assert head.count("big") == 2

    def test_fifo_within_tenant(self):
        drr = DeficitRoundRobin(quantum=10.0)
        for i in range(5):
            drr.push("t", i, cost=1.0)
        assert [item for _t, item in drain(drr)] == [0, 1, 2, 3, 4]

    def test_idle_tenant_banks_no_deficit(self):
        drr = DeficitRoundRobin(quantum=1.0)
        drr.push("a", "a0", cost=1.0)
        assert drr.pop() == ("a", "a0")
        # "a" went idle; its deficit state must be gone.
        assert drr._deficit == {}
        # On reactivation it starts from zero, behind nobody.
        drr.push("b", "b0", cost=1.0)
        drr.push("a", "a1", cost=1.0)
        assert [t for t, _ in drain(drr)] == ["b", "a"]

    def test_remove_if_expels_matching_items(self):
        drr = DeficitRoundRobin(quantum=1.0)
        for i in range(4):
            drr.push("t", i, cost=1.0)
        removed = drr.remove_if(lambda tenant, item: item % 2 == 0)
        assert [item for _t, item in removed] == [0, 2]
        assert len(drr) == 2
        assert [item for _t, item in drain(drr)] == [1, 3]

    def test_drain_all_returns_drr_fair_order(self):
        drr = DeficitRoundRobin(quantum=1.0)
        for i in range(2):
            drr.push("a", f"a{i}", cost=1.0)
            drr.push("b", f"b{i}", cost=1.0)
        drained = drr.drain_all()
        assert [t for t, _ in drained] == ["a", "b", "a", "b"]
        assert len(drr) == 0

    def test_depth_accounting(self):
        drr = DeficitRoundRobin()
        assert len(drr) == 0 and drr.depth("x") == 0
        drr.push("x", 1)
        drr.push("y", 2)
        assert len(drr) == 2 and drr.depth("x") == 1
        assert set(drr.tenants()) == {"x", "y"}
        drr.pop()
        assert len(drr) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(quantum=0.0)
        with pytest.raises(ValueError):
            DeficitRoundRobin().push("t", "item", cost=0.0)

    def test_pop_empty_returns_none(self):
        assert DeficitRoundRobin().pop() is None
