"""Wire-protocol validation: submissions, responses, framing."""

import json

import pytest

from repro.service.protocol import (
    MalformedSubmission,
    Response,
    Status,
    TERMINAL_STATUSES,
    decode_line,
    encode_line,
    parse_submission,
)


def valid_raw(**overrides):
    raw = {
        "tenant": "carrier-a",
        "client": "client-1",
        "app": "netflix",
        "deadline_s": 30,
        "knobs": {"limiter": "common", "seed": 4, "duration": 8.0},
    }
    raw.update(overrides)
    return raw


class TestParseSubmission:
    def test_round_trip(self):
        submission = parse_submission(valid_raw())
        assert submission.tenant == "carrier-a"
        assert submission.deadline_s == 30.0
        scenario = submission.to_scenario()
        assert scenario.app == "netflix"
        assert scenario.limiter == "common"
        assert submission.duration == 8.0

    def test_as_dict_reparses_identically(self):
        submission = parse_submission(valid_raw(id="r-1"))
        again = parse_submission(submission.as_dict())
        assert again == submission

    @pytest.mark.parametrize("mutation,fragment", [
        ({"tenant": ""}, "tenant"),
        ({"client": None}, "client"),
        ({"app": "not-an-app"}, "unknown app"),
        ({"deadline_s": 0}, "deadline"),
        ({"deadline_s": "soon"}, "deadline"),
        ({"id": 7}, "id"),
        ({"knobs": ["limiter"]}, "knobs"),
        ({"knobs": {"background_rate_bps": 1e12}}, "unknown knobs"),
        ({"knobs": {"seed": 1.5}}, "seed"),
        ({"knobs": {"limiter": "sideways"}}, "invalid scenario"),
        ({"knobs": {"duration": 1e6}}, "cap"),
        ({"extra_field": 1}, "unknown fields"),
    ])
    def test_rejections_carry_structured_reasons(self, mutation, fragment):
        with pytest.raises(MalformedSubmission) as excinfo:
            parse_submission(valid_raw(**mutation))
        assert fragment in excinfo.value.reason

    def test_non_dict_rejected(self):
        with pytest.raises(MalformedSubmission):
            parse_submission(["not", "a", "dict"])

    def test_work_multiplier_knobs_are_fenced(self):
        # The whitelist is the defence against submissions smuggling in
        # arbitrary work: everything not listed must be rejected.
        with pytest.raises(MalformedSubmission):
            parse_submission(valid_raw(knobs={"tcp_background_flows": 1000}))


class TestFraming:
    def test_encode_decode_round_trip(self):
        raw = valid_raw()
        assert decode_line(encode_line(raw)) == json.loads(json.dumps(raw))

    def test_garbage_bytes_rejected(self):
        with pytest.raises(MalformedSubmission):
            decode_line(b"\xff\xfe garbage")
        with pytest.raises(MalformedSubmission):
            decode_line("not json at all")
        with pytest.raises(MalformedSubmission):
            decode_line('"a bare string"')

    def test_response_line_is_sorted_canonical_json(self):
        response = Response(id="r", status=Status.VERDICT, tenant="t",
                            verdict={"detected": True})
        parsed = json.loads(response.line())
        assert parsed["id"] == "r"
        assert parsed["verdict"] == {"detected": True}
        assert list(parsed) == sorted(parsed)

    def test_terminal_statuses_cover_the_contract(self):
        assert set(TERMINAL_STATUSES) == {
            "VERDICT", "REJECTED_OVERLOAD", "DEADLINE_EXCEEDED", "FAILED",
        }
