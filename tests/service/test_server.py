"""The asyncio shell: routing, malformed frames, disconnects, drain."""

import asyncio
import json
import time

from repro.service.core import ServiceConfig, ServiceCore
from repro.service.engine import SyntheticEngine
from repro.service.protocol import Status, encode_line
from repro.service.server import ServiceServer


def valid_raw(**overrides):
    raw = {
        "id": "req-a",
        "tenant": "carrier-a",
        "client": "client-1",
        "app": "netflix",
        "deadline_s": 30,
        "knobs": {"limiter": "common", "seed": 4, "duration": 8.0},
    }
    raw.update(overrides)
    return raw


class SlowEngine:
    """Engine that holds the worker thread for a fixed wall delay."""

    def __init__(self, delay_s):
        self.delay_s = delay_s

    def run(self, batch):
        time.sleep(self.delay_s)
        return [("ok", {"detected": False})] * len(batch.requests)


async def start_server(engine=None, core=None, store=None):
    core = core or ServiceCore(ServiceConfig(max_queue=16))
    server = ServiceServer(
        core,
        engine or SyntheticEngine(realtime=False),
        store=store,
        tick_interval_s=0.02,
    )
    await server.start()
    return server


async def stop_server(server):
    server.request_drain()
    await asyncio.wait_for(server.serve_until_drained(), timeout=10)


async def read_response(reader):
    line = await asyncio.wait_for(reader.readline(), timeout=10)
    return json.loads(line)


class TestServer:
    def test_submission_round_trip(self):
        async def scenario():
            server = await start_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_line(valid_raw()))
                await writer.drain()
                response = await read_response(reader)
                assert response["id"] == "req-a"
                assert response["status"] == Status.VERDICT
                assert response["verdict"]["detected"] is True
                writer.close()
            finally:
                await stop_server(server)

        asyncio.run(scenario())

    def test_malformed_frame_fails_without_killing_the_connection(self):
        async def scenario():
            server = await start_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                failed = await read_response(reader)
                assert failed["status"] == Status.FAILED
                assert "malformed submission" in failed["reason"]
                # Same connection still serves a valid submission.
                writer.write(encode_line(valid_raw()))
                await writer.drain()
                verdict = await read_response(reader)
                assert verdict["status"] == Status.VERDICT
                writer.close()
            finally:
                await stop_server(server)

        asyncio.run(scenario())

    def test_concurrent_clients_get_their_own_responses(self):
        async def one_client(port, request_id, seed):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(encode_line(valid_raw(
                id=request_id, client=request_id,
                knobs={"limiter": "common", "seed": seed, "duration": 8.0},
            )))
            await writer.drain()
            response = await read_response(reader)
            writer.close()
            return response

        async def scenario():
            server = await start_server()
            try:
                responses = await asyncio.gather(*[
                    one_client(server.port, f"client-{i}", i)
                    for i in range(4)
                ])
                assert sorted(r["id"] for r in responses) == [
                    f"client-{i}" for i in range(4)
                ]
                assert all(r["status"] == Status.VERDICT for r in responses)
            finally:
                await stop_server(server)

        asyncio.run(scenario())

    def test_disconnected_client_response_goes_unrouted(self):
        async def scenario():
            server = await start_server(engine=SlowEngine(0.3))
            try:
                _reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_line(valid_raw()))
                await writer.drain()
                writer.close()  # vanish before the verdict lands
                deadline = asyncio.get_running_loop().time() + 5.0
                while not server.unrouted:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                (response,) = server.unrouted
                assert response.id == "req-a"
                assert response.status == Status.VERDICT
            finally:
                await stop_server(server)

        asyncio.run(scenario())

    def test_drain_finishes_inflight_then_closes(self):
        async def scenario():
            server = await start_server(engine=SlowEngine(0.2))
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(encode_line(valid_raw()))
            await writer.drain()
            # Give the dispatcher a beat to put the batch in flight,
            # then drain mid-service.
            await asyncio.sleep(0.1)
            server.request_drain()
            response = await read_response(reader)
            assert response["status"] == Status.VERDICT
            await asyncio.wait_for(server.serve_until_drained(), timeout=10)
            assert server.core.draining
            # The listener is closed: new connections are refused.
            try:
                await asyncio.open_connection("127.0.0.1", server.port)
            except OSError:
                pass
            else:
                raise AssertionError("drained server still accepting")
            writer.close()

        asyncio.run(scenario())

    def test_submissions_during_drain_are_rejected(self):
        async def scenario():
            server = await start_server(engine=SlowEngine(0.3))
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(encode_line(valid_raw(id="inflight")))
            await writer.drain()
            await asyncio.sleep(0.1)  # batch now in flight
            server.request_drain()
            writer.write(encode_line(valid_raw(id="late", client="late")))
            await writer.drain()
            rejected = await read_response(reader)
            assert rejected["id"] == "late"
            assert rejected["status"] == Status.REJECTED_OVERLOAD
            assert rejected["reason"] == "draining"
            inflight = await read_response(reader)
            assert inflight["id"] == "inflight"
            assert inflight["status"] == Status.VERDICT
            await asyncio.wait_for(server.serve_until_drained(), timeout=10)
            writer.close()

        asyncio.run(scenario())
