"""Consistency between the stats layer and WeHe's detection pipeline."""

import numpy as np
import pytest

from repro.stats.empirical import ecdf, ecdf_at
from repro.wehe.detection import area_test_statistic
from repro.stats.ks import ks_2samp


@pytest.fixture
def rng():
    return np.random.default_rng(53)


class TestConsistency:
    def test_ks_statistic_is_max_ecdf_gap(self, rng):
        x = rng.normal(0, 1, 60)
        y = rng.normal(0.5, 1, 80)
        grid = np.concatenate([x, y])
        gap = np.max(np.abs(ecdf_at(x, grid) - ecdf_at(y, grid)))
        assert ks_2samp(x, y).statistic == pytest.approx(gap)

    def test_area_statistic_bounded_by_ks(self, rng):
        # The mean CDF gap can never exceed the max CDF gap.
        x = rng.normal(0, 1, 60)
        y = rng.normal(1.0, 1, 60)
        assert area_test_statistic(x, y) <= ks_2samp(x, y).statistic + 1e-12

    def test_ecdf_at_agrees_with_ecdf(self, rng):
        samples = rng.uniform(0, 10, 40)
        xs, ps = ecdf(samples)
        np.testing.assert_allclose(ecdf_at(samples, xs), ps)
