"""ECDF, Monte-Carlo subsampling, and bootstrap tests."""

import numpy as np
import pytest

from repro.stats.bootstrap import bootstrap_ci, jackknife
from repro.stats.empirical import ecdf, ecdf_at, quantile, summarize
from repro.stats.montecarlo import (
    relative_mean_difference,
    relative_mean_difference_distribution,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestEcdf:
    def test_monotone_and_bounded(self, rng):
        xs, ps = ecdf(rng.normal(0, 1, 100))
        assert np.all(np.diff(ps) > 0) or len(ps) == 1
        assert ps[-1] == pytest.approx(1.0)
        assert ps[0] > 0.0

    def test_duplicates_collapse(self):
        xs, ps = ecdf([1, 1, 2, 3, 3, 3])
        np.testing.assert_allclose(xs, [1, 2, 3])
        np.testing.assert_allclose(ps, [2 / 6, 3 / 6, 1.0])

    def test_ecdf_at_points(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert ecdf_at(samples, 2.5) == 0.5
        assert ecdf_at(samples, 0.0) == 0.0
        assert ecdf_at(samples, 4.0) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ecdf([])

    def test_quantile(self):
        assert quantile([1, 2, 3, 4, 5], 0.5) == 3

    def test_summarize_fields(self, rng):
        stats = summarize(rng.uniform(0, 10, 50))
        assert stats["min"] <= stats["q1"] <= stats["median"]
        assert stats["median"] <= stats["q3"] <= stats["max"]
        assert stats["n"] == 50


class TestRelativeMeanDifference:
    def test_sign_convention(self):
        assert relative_mean_difference([10.0], [5.0]) == pytest.approx(0.5)
        assert relative_mean_difference([5.0], [10.0]) == pytest.approx(-0.5)

    def test_equal_means_zero(self):
        assert relative_mean_difference([3.0, 5.0], [4.0, 4.0]) == 0.0

    def test_zero_denominator(self):
        assert relative_mean_difference([0.0], [0.0]) == 0.0

    def test_bounded_by_one(self, rng):
        for _ in range(20):
            x = rng.uniform(0, 100, 10)
            y = rng.uniform(0, 100, 10)
            assert abs(relative_mean_difference(x, y)) <= 1.0


class TestOdiffDistribution:
    def test_size_matches_iterations(self, rng):
        x = rng.uniform(5, 10, 40)
        y = rng.uniform(5, 10, 40)
        values = relative_mean_difference_distribution(x, y, 57, rng)
        assert len(values) == 57

    def test_identical_inputs_centre_near_zero(self, rng):
        x = rng.uniform(5, 10, 200)
        values = relative_mean_difference_distribution(x, x, 300, rng)
        assert abs(np.mean(values)) < 0.05

    def test_disjoint_inputs_large_difference(self, rng):
        x = rng.uniform(9, 10, 50)
        y = rng.uniform(1, 2, 50)
        values = relative_mean_difference_distribution(x, y, 100, rng)
        assert np.min(values) > 0.7

    def test_rejects_tiny_samples(self, rng):
        with pytest.raises(ValueError):
            relative_mean_difference_distribution([1.0], [1.0, 2.0], 10, rng)

    def test_rejects_zero_iterations(self, rng):
        with pytest.raises(ValueError):
            relative_mean_difference_distribution([1.0, 2.0], [1.0, 2.0], 0, rng)


class TestResampling:
    def test_jackknife_mean_is_unbiased(self, rng):
        samples = rng.normal(5, 1, 60)
        estimate, stderr = jackknife(samples, np.mean)
        assert estimate == pytest.approx(np.mean(samples), rel=1e-10)
        assert stderr == pytest.approx(np.std(samples, ddof=1) / np.sqrt(60), rel=1e-6)

    def test_jackknife_needs_two(self):
        with pytest.raises(ValueError):
            jackknife([1.0], np.mean)

    def test_bootstrap_ci_contains_truth_usually(self, rng):
        samples = rng.normal(10, 2, 100)
        low, high = bootstrap_ci(samples, np.mean, 500, rng)
        assert low < 10.5 and high > 9.5
        assert low < high

    def test_bootstrap_rejects_bad_confidence(self, rng):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], np.mean, 10, rng, confidence=1.5)
