"""Tests for the shaper fingerprinter (repro.stats.fingerprint)."""

import numpy as np
import pytest

from repro.stats.fingerprint import (
    DEFAULT_SHAPERS,
    FEATURE_NAMES,
    FingerprintReport,
    NearestCentroidClassifier,
    fingerprint_bottleneck,
    probe_config,
    probe_features,
    replay_features,
)


def synthetic_clusters(seed=0):
    """Three well-separated Gaussian blobs in feature space."""
    rng = np.random.default_rng(seed)
    centers = {"a": 0.0, "b": 10.0, "c": -10.0}
    features, labels = [], []
    for label, center in centers.items():
        for _ in range(8):
            features.append(center + rng.normal(0, 0.5, len(FEATURE_NAMES)))
            labels.append(label)
    return np.asarray(features), labels


class TestNearestCentroidClassifier:
    def test_fit_predict_separable_clusters(self):
        features, labels = synthetic_clusters()
        clf = NearestCentroidClassifier().fit(features, labels)
        assert clf.fitted
        assert clf.classes_ == ("a", "b", "c")
        for vector, label in zip(features, labels):
            assert clf.predict(vector) == label

    def test_unfitted_refuses_to_predict(self):
        clf = NearestCentroidClassifier()
        assert not clf.fitted
        with pytest.raises(ValueError):
            clf.predict(np.zeros(len(FEATURE_NAMES)))

    def test_distances_cover_all_classes(self):
        features, labels = synthetic_clusters()
        clf = NearestCentroidClassifier().fit(features, labels)
        distances = clf.distances(features[0])
        assert set(distances) == {"a", "b", "c"}
        assert min(distances, key=distances.get) == "a"

    def test_groups_partition_the_model(self):
        features, labels = synthetic_clusters()
        groups = ["tcp" if lab != "c" else "udp" for lab in labels]
        clf = NearestCentroidClassifier().fit(features, labels, groups=groups)
        assert clf.group_names == ("tcp", "udp")
        # A tcp sample is matched only against tcp centroids.
        assert set(clf.distances(features[0], group="tcp")) == {"a", "b"}
        assert clf.predict(features[-1], group="udp") == "c"

    def test_unknown_group_raises(self):
        features, labels = synthetic_clusters()
        groups = ["tcp"] * len(labels)
        clf = NearestCentroidClassifier().fit(features, labels, groups=groups)
        with pytest.raises(ValueError, match="unknown group"):
            clf.predict(features[0], group="udp")

    def test_serialization_round_trip(self):
        features, labels = synthetic_clusters()
        groups = ["tcp" if lab != "c" else "udp" for lab in labels]
        clf = NearestCentroidClassifier().fit(features, labels, groups=groups)
        restored = NearestCentroidClassifier.from_dict(clf.to_dict())
        assert restored.group_names == clf.group_names
        assert restored.classes_ == clf.classes_
        for vector, group in zip(features, groups):
            want = clf.distances(vector, group=group)
            got = restored.distances(vector, group=group)
            assert got == pytest.approx(want)

    def test_predict_many_matches_predict(self):
        features, labels = synthetic_clusters()
        clf = NearestCentroidClassifier().fit(features, labels)
        many = clf.predict_many(features)
        assert many == [clf.predict(v) for v in features]

    def test_zero_variance_feature_does_not_break_fit(self):
        features, labels = synthetic_clusters()
        features[:, 3] = 42.0
        clf = NearestCentroidClassifier().fit(features, labels)
        assert clf.predict(features[0]) == labels[0]


class TestProbeConfig:
    def test_defaults_for_fingerprinting(self):
        config = probe_config("red", seed=3)
        assert config.shaper == "red"
        assert config.seed == 3
        assert config.limiter == "common"
        assert config.background_share == 0.25

    def test_overrides_pass_through(self):
        config = probe_config("tbf", duration=4.0, background_share=0.5)
        assert config.duration == 4.0
        assert config.background_share == 0.5

    def test_default_shapers_are_registered(self):
        from repro.netsim.qdisc import registered_qdiscs

        assert set(DEFAULT_SHAPERS) <= set(registered_qdiscs())


class TestReplayFeatures:
    def test_requires_exactly_two_handles(self):
        with pytest.raises(ValueError, match="two simultaneous"):
            replay_features([], 10.0)

    def test_probe_features_vector_shape_and_determinism(self):
        config = probe_config("tbf", app="zoom", seed=0, duration=4.0)
        vector = probe_features(config)
        assert vector.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(vector))
        again = probe_features(config)
        assert np.array_equal(vector, again)


class TestFingerprintReport:
    def test_margin_and_classified(self):
        report = FingerprintReport(
            shaper="red", distances={"red": 1.0, "tbf": 3.5, "pie": 4.0}
        )
        assert report.classified
        assert report.margin() == pytest.approx(2.5)
        assert FingerprintReport().margin() == 0.0
        assert not FingerprintReport(reason="not-localized").classified


class TestFingerprintBottleneck:
    class _StubReport:
        def __init__(self, localized):
            self.localized = localized

    class _StubService:
        last_simultaneous_handles = ()
        last_environment = None

    def test_not_localized_short_circuits(self):
        result = fingerprint_bottleneck(
            self._StubReport(False), self._StubService(), None
        )
        assert result.reason == "not-localized"
        assert not result.classified

    def test_no_replay_short_circuits(self):
        result = fingerprint_bottleneck(
            self._StubReport(True), self._StubService(), None
        )
        assert result.reason == "no-replay"
        assert not result.classified
