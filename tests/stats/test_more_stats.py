"""Additional statistics cross-checks (ties, extremes, consistency)."""

import numpy as np
import pytest
import scipy.stats

from repro.stats.ks import ks_2samp
from repro.stats.mwu import mann_whitney_u
from repro.stats.spearman import spearman_test


@pytest.fixture
def rng():
    return np.random.default_rng(88)


class TestSpearmanWithTies:
    def test_heavily_tied_series_match_scipy(self, rng):
        x = rng.integers(0, 3, 40).astype(float)
        y = rng.integers(0, 3, 40).astype(float)
        ours = spearman_test(x, y, alternative="two-sided")
        rho, p = scipy.stats.spearmanr(x, y)
        assert ours.rho == pytest.approx(rho, abs=1e-10)
        assert ours.pvalue == pytest.approx(p, rel=1e-5)

    def test_zero_inflated_loss_series(self, rng):
        # The shape Algorithm 1 actually sees: many zeros, few values.
        x = np.where(rng.random(60) < 0.7, 0.0, rng.random(60))
        y = np.where(rng.random(60) < 0.7, 0.0, rng.random(60))
        ours = spearman_test(x, y, alternative="greater")
        theirs = scipy.stats.spearmanr(x, y, alternative="greater")
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=1e-4, abs=1e-8)


class TestKsConsistency:
    def test_more_data_sharpens_significance(self, rng):
        small_x, small_y = rng.normal(0, 1, 30), rng.normal(0.5, 1, 30)
        big_x, big_y = rng.normal(0, 1, 300), rng.normal(0.5, 1, 300)
        assert ks_2samp(big_x, big_y).pvalue < ks_2samp(small_x, small_y).pvalue

    def test_statistic_symmetry(self, rng):
        x, y = rng.normal(0, 1, 50), rng.normal(0.3, 1, 70)
        assert ks_2samp(x, y).statistic == ks_2samp(y, x).statistic


class TestMwuConsistency:
    def test_less_and_greater_are_complementary(self, rng):
        x, y = rng.normal(0, 1, 40), rng.normal(0.2, 1, 40)
        less = mann_whitney_u(x, y, alternative="less").pvalue
        greater = mann_whitney_u(x, y, alternative="greater").pvalue
        # With the continuity correction the sum is within a hair of 1.
        assert less + greater == pytest.approx(1.0, abs=0.02)

    def test_shift_monotonicity(self, rng):
        x = rng.normal(0, 1, 50)
        p_small_shift = mann_whitney_u(x, x + 0.2, alternative="less").pvalue
        p_big_shift = mann_whitney_u(x, x + 2.0, alternative="less").pvalue
        assert p_big_shift < p_small_shift

    def test_two_sided_matches_scipy(self, rng):
        x, y = rng.normal(0, 1, 45), rng.normal(0.4, 1, 55)
        ours = mann_whitney_u(x, y, alternative="two-sided")
        theirs = scipy.stats.mannwhitneyu(
            x, y, alternative="two-sided", method="asymptotic"
        )
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=5e-3)
