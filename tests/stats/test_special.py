"""Cross-checks of the from-scratch special functions against scipy."""

import math

import pytest
import scipy.special
import scipy.stats

from repro.stats.special import (
    betainc,
    kolmogorov_sf,
    log_gamma,
    normal_sf,
    t_sf,
)


class TestNormalSf:
    def test_matches_scipy(self):
        for z in (-3.0, -1.0, 0.0, 0.5, 1.96, 4.0):
            assert normal_sf(z) == pytest.approx(scipy.stats.norm.sf(z), rel=1e-10)

    def test_symmetry(self):
        assert normal_sf(1.5) + normal_sf(-1.5) == pytest.approx(1.0)

    def test_at_zero(self):
        assert normal_sf(0.0) == pytest.approx(0.5)


class TestLogGamma:
    def test_matches_scipy(self):
        for x in (0.5, 1.0, 2.5, 10.0, 100.5):
            assert log_gamma(x) == pytest.approx(scipy.special.gammaln(x), rel=1e-9)

    def test_factorial_identity(self):
        assert log_gamma(6.0) == pytest.approx(math.log(120.0), rel=1e-10)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_gamma(0.0)


class TestBetainc:
    @pytest.mark.parametrize("a,b", [(0.5, 0.5), (2.0, 3.0), (10.0, 1.0), (5.5, 7.5)])
    def test_matches_scipy(self, a, b):
        for x in (0.01, 0.25, 0.5, 0.75, 0.99):
            assert betainc(a, b, x) == pytest.approx(
                scipy.special.betainc(a, b, x), rel=1e-8, abs=1e-12
            )

    def test_boundaries(self):
        assert betainc(2.0, 3.0, 0.0) == 0.0
        assert betainc(2.0, 3.0, 1.0) == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            betainc(1.0, 1.0, 1.5)


class TestTSf:
    @pytest.mark.parametrize("df", [1, 2, 5, 10, 30, 100])
    def test_matches_scipy(self, df):
        for t in (-4.0, -1.0, 0.0, 0.5, 2.0, 6.0):
            assert t_sf(t, df) == pytest.approx(
                scipy.stats.t.sf(t, df), rel=1e-7, abs=1e-10
            )

    def test_symmetry(self):
        assert t_sf(1.3, 7) + t_sf(-1.3, 7) == pytest.approx(1.0)

    def test_rejects_bad_df(self):
        with pytest.raises(ValueError):
            t_sf(1.0, 0)


class TestKolmogorovSf:
    def test_matches_scipy(self):
        for x in (0.3, 0.5, 1.0, 1.5, 2.0):
            assert kolmogorov_sf(x) == pytest.approx(
                scipy.special.kolmogorov(x), rel=1e-8, abs=1e-12
            )

    def test_extremes(self):
        assert kolmogorov_sf(0.0) == 1.0
        assert kolmogorov_sf(-1.0) == 1.0
        assert kolmogorov_sf(10.0) == pytest.approx(0.0, abs=1e-12)
