"""KS / MWU / Spearman cross-checks against scipy and behaviour tests."""

import numpy as np
import pytest
import scipy.stats

from repro.stats.ks import ks_2samp
from repro.stats.mwu import mann_whitney_u
from repro.stats.spearman import rankdata, spearman_rho, spearman_test


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestKs2Samp:
    def test_statistic_matches_scipy(self, rng):
        x = rng.normal(0, 1, 80)
        y = rng.normal(0.5, 1, 120)
        ours = ks_2samp(x, y)
        theirs = scipy.stats.ks_2samp(x, y, method="asymp")
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-12)

    def test_pvalue_close_to_scipy(self, rng):
        x = rng.normal(0, 1, 100)
        y = rng.normal(0.8, 1, 100)
        ours = ks_2samp(x, y)
        theirs = scipy.stats.ks_2samp(x, y, method="asymp")
        # Numerical Recipes correction differs slightly from scipy's
        # asymptotic formula; same order of magnitude is expected.
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=0.5, abs=1e-6)

    def test_identical_samples_not_significant(self, rng):
        x = rng.uniform(0, 1, 200)
        assert not ks_2samp(x, x).significant()

    def test_disjoint_samples_significant(self):
        assert ks_2samp(np.arange(50), np.arange(100, 150)).significant()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ks_2samp([], [1.0])


class TestMannWhitneyU:
    def test_matches_scipy_less(self, rng):
        x = rng.normal(0, 1, 60)
        y = rng.normal(0.3, 1, 70)
        ours = mann_whitney_u(x, y, alternative="less")
        theirs = scipy.stats.mannwhitneyu(x, y, alternative="less", method="asymptotic")
        assert ours.u_statistic == pytest.approx(theirs.statistic)
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=1e-3)

    def test_matches_scipy_greater(self, rng):
        x = rng.normal(0.5, 1, 50)
        y = rng.normal(0, 1, 50)
        ours = mann_whitney_u(x, y, alternative="greater")
        theirs = scipy.stats.mannwhitneyu(
            x, y, alternative="greater", method="asymptotic"
        )
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=1e-3)

    def test_matches_scipy_with_ties(self, rng):
        x = rng.integers(0, 5, 80).astype(float)
        y = rng.integers(1, 6, 80).astype(float)
        ours = mann_whitney_u(x, y, alternative="less")
        theirs = scipy.stats.mannwhitneyu(x, y, alternative="less", method="asymptotic")
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=1e-3)

    def test_clearly_smaller_sample_is_significant(self, rng):
        small = rng.uniform(0, 0.1, 50)
        large = rng.uniform(0.5, 1.0, 50)
        assert mann_whitney_u(small, large, alternative="less").significant()

    def test_identical_constant_samples(self):
        result = mann_whitney_u([1.0] * 10, [1.0] * 10)
        assert result.pvalue == 1.0

    def test_rejects_unknown_alternative(self):
        with pytest.raises(ValueError):
            mann_whitney_u([1.0], [2.0], alternative="sideways")


class TestRankdata:
    def test_matches_scipy(self, rng):
        x = rng.integers(0, 10, 50).astype(float)
        np.testing.assert_allclose(rankdata(x), scipy.stats.rankdata(x))

    def test_simple_ranks(self):
        np.testing.assert_allclose(rankdata([30, 10, 20]), [3, 1, 2])

    def test_tie_averaging(self):
        np.testing.assert_allclose(rankdata([1, 2, 2, 3]), [1, 2.5, 2.5, 4])


class TestSpearman:
    def test_rho_matches_scipy(self, rng):
        x = rng.normal(0, 1, 40)
        y = x + rng.normal(0, 0.5, 40)
        ours = spearman_rho(x, y)
        theirs, _ = scipy.stats.spearmanr(x, y)
        assert ours == pytest.approx(theirs, rel=1e-10)

    def test_pvalue_matches_scipy_two_sided(self, rng):
        x = rng.normal(0, 1, 35)
        y = x + rng.normal(0, 1.5, 35)
        ours = spearman_test(x, y, alternative="two-sided")
        theirs = scipy.stats.spearmanr(x, y)
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_pvalue_matches_scipy_greater(self, rng):
        x = rng.normal(0, 1, 30)
        y = 0.4 * x + rng.normal(0, 1, 30)
        ours = spearman_test(x, y, alternative="greater")
        theirs = scipy.stats.spearmanr(x, y, alternative="greater")
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_monotone_transform_invariance(self, rng):
        x = rng.uniform(1, 10, 25)
        y = rng.uniform(1, 10, 25)
        rho = spearman_rho(x, y)
        assert spearman_rho(np.log(x), y) == pytest.approx(rho)
        assert spearman_rho(x**3, y) == pytest.approx(rho)

    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert spearman_rho(x, 2 * x + 1) == pytest.approx(1.0)
        assert spearman_rho(x, -x) == pytest.approx(-1.0)

    def test_short_series_inconclusive(self):
        assert spearman_test([1.0, 2.0], [1.0, 2.0]).pvalue == 1.0

    def test_constant_series_no_trend(self):
        assert spearman_rho([1, 1, 1, 1], [1, 2, 3, 4]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rho([1, 2], [1, 2, 3])
