"""End-to-end cache-reuse smoke: the CI gate for the experiment store.

Runs the same tiny CLI sweep twice against one store and fails if the
second run simulates anything (must be 100% cache hits) or if the two
JSONL record streams differ by a byte.  CI runs exactly this module in
its cache-smoke job.
"""

from repro.cli import main as cli_main
from repro.store import ExperimentStore


def _sweep(capsys, root, extra=()):
    rc = cli_main(
        [
            "sweep",
            "--app",
            "zoom",
            "--seeds",
            "2",
            "--duration",
            "4",
            "--jobs",
            "1",
            "--store",
            str(root),
            "--json",
            *extra,
        ]
    )
    assert rc == 0
    return capsys.readouterr().out


def test_second_run_is_all_hits_and_byte_identical(tmp_path, capsys):
    root = tmp_path / "store"
    first = _sweep(capsys, root)
    second = _sweep(capsys, root, extra=["--resume"])
    assert first == second, "cached records must serialize byte-identically"
    assert len(first.strip().splitlines()) == 2

    store = ExperimentStore(root)
    runs = store.ledger_runs()
    assert len(runs) == 2
    assert runs[0]["misses"] == 2
    assert runs[1]["misses"] == 0, f"second run simulated cells: {runs[1]}"
    assert runs[1]["hits"] == runs[1]["cells"] == 2
    assert all(run["status"] == "complete" for run in runs)
