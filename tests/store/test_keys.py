"""Cache-key stability: same inputs => same key, any change => new key."""

import dataclasses

from repro.experiments.scenarios import ScenarioConfig
from repro.faults import FaultProfile
from repro.store import (
    code_fingerprint,
    detection_cache_key,
    fault_profile_id,
    tdiff_cache_key,
    wild_cache_key,
)

BASE = ScenarioConfig(app="zoom", duration=8.0, seed=0)

#: One changed value per ScenarioConfig field (all different from BASE).
FIELD_CHANGES = {
    "app": "netflix",
    "limiter": "noncommon",
    "input_rate_factor": 2.0,
    "queue_factor": 1.0,
    "background_share": 0.25,
    "background_rate_bps": 10e6,
    "tcp_background_flows": 4,
    "rtt_1": 0.050,
    "rtt_2": 0.060,
    "congestion_factor": 0.95,
    "duration": 30.0,
    "background_modulation": ((0.2, 0.3, 0.8),),
    "seed": 1,
    "overcount_rate": 0.01,
    "registration_jitter": 0.001,
    "fidelity": "hybrid",
    "shaper": "red",
    "shaper_params": (("max_p", 0.2),),
    "multipath": 2,
    "flowlet_gap_s": 0.05,
    "multipath_shaped": 1,
}

#: Knobs only legal alongside ``multipath``; their sensitivity is
#: checked relative to a multipath base (like shaper_params vs shaper).
MULTIPATH_DEPENDENT = {"flowlet_gap_s", "multipath_shaped"}


class TestDetectionKeyStability:
    def test_same_config_same_key(self):
        assert detection_cache_key(BASE) == detection_cache_key(
            ScenarioConfig(app="zoom", duration=8.0, seed=0)
        )

    def test_every_config_field_change_changes_key(self):
        base_key = detection_cache_key(BASE)
        fields = {f.name for f in dataclasses.fields(ScenarioConfig)}
        assert fields == set(FIELD_CHANGES), "keep FIELD_CHANGES exhaustive"
        for field, value in FIELD_CHANGES.items():
            if field == "shaper_params":
                # shaper_params is only legal alongside a shaper; its
                # sensitivity is relative to the shaped base.
                shaped_key = detection_cache_key(BASE.with_(shaper="red"))
                changed = BASE.with_(shaper="red", **{field: value})
                assert detection_cache_key(changed) != shaped_key, field
                continue
            if field in MULTIPATH_DEPENDENT:
                bundle_key = detection_cache_key(BASE.with_(multipath=2))
                changed = BASE.with_(multipath=2, **{field: value})
                assert detection_cache_key(changed) != bundle_key, field
                continue
            changed = BASE.with_(**{field: value})
            assert detection_cache_key(changed) != base_key, field

    def test_runner_knobs_change_key(self):
        base_key = detection_cache_key(BASE)
        assert detection_cache_key(BASE, modified=False) != base_key
        assert detection_cache_key(BASE, entropy=1) != base_key
        assert detection_cache_key(BASE, merge_flows=True) != base_key
        assert detection_cache_key(BASE, detectors=["other"]) != base_key
        assert detection_cache_key(BASE, fault_profile="flaky") != base_key
        assert detection_cache_key(BASE, schema_version=999) != base_key
        assert detection_cache_key(BASE, fingerprint="deadbeef") != base_key

    def test_detector_order_does_not_matter(self):
        assert detection_cache_key(BASE, detectors=["a", "b"]) == detection_cache_key(
            BASE, detectors=["b", "a"]
        )

    def test_kinds_do_not_collide(self):
        assert detection_cache_key(BASE) != tdiff_cache_key(BASE)


class TestShaperKeyCompat:
    """The mechanism axis must not shift pre-shaper cache keys."""

    def test_default_shaper_key_matches_legacy_dict(self):
        from repro.store.serialize import config_from_dict, config_to_dict

        data = config_to_dict(BASE)
        assert "shaper" not in data
        assert "shaper_params" not in data
        # A record written before the shaper axis existed deserializes
        # to the same config, hence the same key.
        assert config_from_dict(data) == BASE
        assert detection_cache_key(config_from_dict(data)) == detection_cache_key(
            BASE
        )

    def test_shaper_round_trips_and_changes_key(self):
        from repro.store.serialize import config_from_dict, config_to_dict

        shaped = BASE.with_(shaper="red", shaper_params=(("max_p", 0.2),))
        data = config_to_dict(shaped)
        assert data["shaper"] == "red"
        assert config_from_dict(data) == shaped
        assert detection_cache_key(shaped) != detection_cache_key(BASE)

    def test_shaper_params_order_matters(self):
        a = BASE.with_(shaper="red", shaper_params=(("max_p", 0.2),))
        b = BASE.with_(shaper="red", shaper_params=(("max_p", 0.3),))
        assert detection_cache_key(a) != detection_cache_key(b)


class TestMultipathKeyCompat:
    """The multipath axis must not shift pre-multipath cache keys."""

    def test_default_multipath_key_matches_legacy_dict(self):
        from repro.store.serialize import config_from_dict, config_to_dict

        data = config_to_dict(BASE)
        assert "multipath" not in data
        assert "flowlet_gap_s" not in data
        assert "multipath_shaped" not in data
        # A record written before the multipath axis existed
        # deserializes to the same config, hence the same key.
        assert config_from_dict(data) == BASE
        assert detection_cache_key(config_from_dict(data)) == (
            detection_cache_key(BASE)
        )

    def test_multipath_round_trips_and_changes_key(self):
        from repro.store.serialize import config_from_dict, config_to_dict

        bundled = BASE.with_(
            multipath=4, flowlet_gap_s=0.02, multipath_shaped=2
        )
        data = config_to_dict(bundled)
        assert data["multipath"] == 4
        assert config_from_dict(data) == bundled
        assert detection_cache_key(bundled) != detection_cache_key(BASE)

    def test_every_multipath_knob_changes_key(self):
        base = BASE.with_(multipath=2)
        base_key = detection_cache_key(base)
        assert detection_cache_key(BASE.with_(multipath=4)) != base_key
        assert (
            detection_cache_key(base.with_(flowlet_gap_s=0.02)) != base_key
        )
        assert (
            detection_cache_key(base.with_(multipath_shaped=1)) != base_key
        )


class TestFaultProfileId:
    def test_none_and_empty_are_none(self):
        assert fault_profile_id(None) == "none"
        assert fault_profile_id("none") == "none"
        assert fault_profile_id(FaultProfile.none()) == "none"

    def test_spec_and_profile_agree(self):
        spec = "replay_abort=0.5,corrupt_loss=1.0:2"
        assert fault_profile_id(spec) == fault_profile_id(FaultProfile.parse(spec))

    def test_rule_order_normalized(self):
        a = fault_profile_id("replay_abort=0.5,corrupt_loss=0.25")
        b = fault_profile_id("corrupt_loss=0.25,replay_abort=0.5")
        assert a == b

    def test_probability_matters(self):
        assert fault_profile_id("replay_abort=0.5") != fault_profile_id(
            "replay_abort=0.25"
        )


class TestWildKey:
    def test_stability_and_sensitivity(self):
        base = wild_cache_key("ISP1", "netflix", 0)
        assert base == wild_cache_key("ISP1", "netflix", 0)
        assert wild_cache_key("ISP2", "netflix", 0) != base
        assert wild_cache_key("ISP1", "zoom", 0) != base
        assert wild_cache_key("ISP1", "netflix", 1) != base
        assert wild_cache_key("ISP1", "netflix", 0, sanity_check=True) != base
        assert wild_cache_key("ISP1", "netflix", 0, fidelity="hybrid") != base


class TestCodeFingerprint:
    def test_deterministic(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "pinned")
        code_fingerprint.cache_clear()
        try:
            assert code_fingerprint() == "pinned"
        finally:
            code_fingerprint.cache_clear()
