"""Ledger robustness: hard kills, corrupt lines, quarantine events.

The ledger's one job is to stay truthful when everything around it is
dying: a SIGKILLed sweep must read back as interrupted with its
surviving checkpoints intact, garbage lines must never crash a reader,
and quarantined cells must leave an audit trail that ``--resume`` can
act on.
"""

import hashlib
import json
import logging
import os
import signal
import subprocess
import sys
from pathlib import Path

import repro
from repro.api import SweepRequest, run_sweep
from repro.experiments.scenarios import ScenarioConfig, seed_sweep
from repro.parallel import SweepExecutor
from repro.parallel.executor import _run_cached_sweep
from repro.store import ExperimentStore, record_line

DURATION = 5.0

#: Runs a store-backed serial sweep and SIGKILLs itself the moment the
#: first cell's checkpoint has been flushed -- the mid-run hard-crash
#: scenario no in-process test can fake.
_KILLED_SWEEP = """
import os, signal, sys
from repro.api import SweepRequest, run_sweep
from repro.experiments.scenarios import ScenarioConfig, seed_sweep
from repro.store import ExperimentStore

configs = list(seed_sweep(
    ScenarioConfig(app="zoom", duration={duration}, seed=0), range(1, 5)
))
def die_after_first_checkpoint(index, item, result):
    os.kill(os.getpid(), signal.SIGKILL)
run_sweep(SweepRequest.detection(
    configs, jobs=1, store=ExperimentStore(sys.argv[1]),
    on_result=die_after_first_checkpoint,
))
raise SystemExit("unreachable: the sweep should have been killed")
"""


def _configs(n=4):
    base = ScenarioConfig(app="zoom", duration=DURATION, seed=0)
    return list(seed_sweep(base, range(1, n + 1)))


def _counting(monkeypatch):
    """Count actual cell simulations (serial path only)."""
    import repro.parallel.executor as executor

    calls = []
    real = executor.run_detection_experiment

    def counted(config, **kwargs):
        calls.append(config.seed)
        return real(config, **kwargs)

    monkeypatch.setattr(executor, "run_detection_experiment", counted)
    return calls


class TestSigkillMidRun:
    def test_hard_killed_sweep_reads_back_as_interrupted(
        self, tmp_path, monkeypatch
    ):
        root = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        proc = subprocess.run(
            [sys.executable, "-c",
             _KILLED_SWEEP.format(duration=DURATION), str(root)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        # A start event with no finish event == interrupted.
        store = ExperimentStore(root)
        [run] = store.ledger_runs()
        assert run["status"] == "interrupted"
        assert run["misses"] is None  # the finish event never landed
        assert store.stats()["interrupted_runs"] == 1
        # Exactly one checkpoint survived the kill.
        assert len(store.entries()) == 1

        # Resume: only the three never-checkpointed cells recompute,
        # and the merged records match a clean end-to-end run.
        configs = _configs()
        calls = _counting(monkeypatch)
        resumed = run_sweep(
            SweepRequest.detection(configs, jobs=1, store=store)
        )
        assert calls == [config.seed for config in configs[1:]]
        clean = run_sweep(SweepRequest.detection(configs, jobs=1)).results
        assert [record_line(r) for r in resumed.results] == [
            record_line(r) for r in clean
        ]
        finished = store.ledger_runs()[-1]
        assert finished["status"] == "complete"
        assert (finished["hits"], finished["misses"]) == (1, 3)


class TestCorruptLedgerLines:
    def test_garbage_lines_are_skipped_logged_and_counted(
        self, tmp_path, caplog
    ):
        store = ExperimentStore(tmp_path / "store")
        run_id = store.begin_run(kind="toy", cells=2, hits=0)
        store.finish_run(run_id, kind="toy", cells=2, hits=0, misses=2)
        with store.ledger_path.open("a") as ledger:
            ledger.write("!!! not json at all\n")
            ledger.write('{"event": "start", "run_id"\n')  # torn tail
            ledger.write('[1, 2, 3]\n')  # JSON, but not an event dict
            ledger.write('{"event": "finish"}\n')  # missing run_id

        reread = ExperimentStore(tmp_path / "store")
        with caplog.at_level(logging.DEBUG, logger="repro.store.store"):
            runs = reread.ledger_runs()
        [run] = runs
        assert run["run_id"] == run_id
        assert run["status"] == "complete"
        assert reread.skipped_lines == 4
        assert any(
            "skipping corrupt ledger line" in record.message
            for record in caplog.records
        )

    def test_unknown_run_ids_are_tolerated(self, tmp_path):
        # A finish/cell_failure for a run whose start line was lost
        # (e.g. truncated) must not crash or invent a run.
        store = ExperimentStore(tmp_path / "store")
        store.finish_run("feedbeef0000", kind="toy", cells=1, hits=0, misses=1)
        store.record_failure("feedbeef0000", {"index": 0})
        assert store.ledger_runs() == []


def _toy_keys(items):
    return [hashlib.sha256(item.encode()).hexdigest() for item in items]


def _run_toy(store, task, items):
    return _run_cached_sweep(
        task,
        items,
        _toy_keys(items),
        store,
        SweepExecutor(1),
        kind="toy",
        decode=lambda payload: payload["value"],
        encode=lambda value: {"value": value},
        no_cache=False,
    )


class TestCellFailureEvents:
    def test_quarantine_writes_audit_trail_and_resume_heals_it(
        self, tmp_path
    ):
        items = ["alpha", "bad", "gamma"]

        def flaky(item):
            if item == "bad":
                raise RuntimeError("boom")
            return item.upper()

        store = ExperimentStore(tmp_path / "store")
        results, hits, misses, failures, interrupted = _run_toy(
            store, flaky, items
        )
        assert (hits, misses, interrupted) == (0, 3, False)
        assert results[0] == "ALPHA" and results[2] == "GAMMA"
        [failure] = failures
        assert failure.key == _toy_keys(items)[1]

        run = store.ledger_runs()[-1]
        assert run["status"] == "complete"
        assert run["failures"] == 1
        [event] = run["cell_failures"]
        assert event["status"] == "failed"
        assert event["key"] == failure.key
        assert event["kind"] == "exception"
        assert "RuntimeError: boom" in event["error"]
        # The event round-trips as canonical JSON on disk.
        raw = [
            json.loads(line)
            for line in store.ledger_path.read_text().splitlines()
        ]
        assert sum(e["event"] == "cell_failure" for e in raw) == 1

        # The quarantined cell never checkpointed, so a re-run with a
        # fixed task computes exactly that cell.
        computed = []

        def fixed(item):
            computed.append(item)
            return item.upper()

        results, hits, misses, failures, _ = _run_toy(store, fixed, items)
        assert computed == ["bad"]
        assert (hits, misses, failures) == (2, 1, [])
        assert results == ["ALPHA", "BAD", "GAMMA"]
