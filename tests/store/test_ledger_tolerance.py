"""The ledger survives a full or failing disk: logged, counted, not raised."""

import errno

import pytest

from repro.obs.metrics import MetricsSink, use_sink
from repro.store import ExperimentStore
from repro.store import store as store_module


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "store")


def break_ledger_appends(monkeypatch, error=errno.ENOSPC):
    def exploding_append(path, line):
        raise OSError(error, "disk event")

    monkeypatch.setattr(store_module, "_append_line", exploding_append)


class TestFinishRunTolerance:
    def test_enospc_on_finish_is_swallowed_and_counted(
        self, store, monkeypatch, caplog
    ):
        run_id = store.begin_run("detection", cells=4, hits=0)
        break_ledger_appends(monkeypatch)
        with caplog.at_level("ERROR", logger="repro.store.store"):
            store.finish_run(run_id, "detection", cells=4, hits=0, misses=4)
        assert store.ledger_write_errors == 1
        assert any("ledger append failed" in r.message for r in caplog.records)
        # The run reads as interrupted -- not as a crash.
        (run,) = store.ledger_runs()
        assert run["status"] == "interrupted"

    def test_eio_is_tolerated_too(self, store, monkeypatch):
        run_id = store.begin_run("detection", cells=1, hits=0)
        break_ledger_appends(monkeypatch, error=errno.EIO)
        store.finish_run(run_id, "detection", cells=1, hits=0, misses=1)
        assert store.ledger_write_errors == 1

    def test_obs_counter_increments(self, store, monkeypatch):
        run_id = store.begin_run("detection", cells=1, hits=0)
        break_ledger_appends(monkeypatch)
        with use_sink(MetricsSink()) as sink:
            store.finish_run(run_id, "detection", cells=1, hits=0, misses=1)
            store.finish_run(run_id, "detection", cells=1, hits=0, misses=1)
        assert sink.snapshot()["counters"]["store.ledger_write_errors"] == 2
        assert store.ledger_write_errors == 2

    def test_healthy_disk_counts_nothing(self, store):
        run_id = store.begin_run("detection", cells=1, hits=1)
        store.finish_run(run_id, "detection", cells=1, hits=1, misses=0)
        assert store.ledger_write_errors == 0
        (run,) = store.ledger_runs()
        assert run["status"] == "complete"


class TestAppendLedgerEvent:
    def test_requires_event_and_run_id_keys(self, store):
        with pytest.raises(ValueError):
            store.append_ledger_event({"event": "service_pending"})
        with pytest.raises(ValueError):
            store.append_ledger_event({"run_id": "abc"})

    def test_round_trips_through_ledger_events(self, store):
        assert store.append_ledger_event(
            {"event": "service_pending", "run_id": "d1", "pending": [1, 2]}
        )
        assert store.append_ledger_event(
            {"event": "service_resume", "run_id": "d1"}
        )
        (pending,) = store.ledger_events("service_pending")
        assert pending["pending"] == [1, 2]
        assert len(store.ledger_events()) == 2
        assert store.ledger_events("nope") == []

    def test_unknown_kinds_do_not_corrupt_ledger_runs(self, store):
        store.append_ledger_event({"event": "service_pending", "run_id": "d1"})
        run_id = store.begin_run("detection", cells=1, hits=0)
        store.finish_run(run_id, "detection", cells=1, hits=0, misses=1)
        (run,) = store.ledger_runs()
        assert run["run_id"] == run_id
        assert store.skipped_lines == 0

    def test_write_failure_returns_false(self, store, monkeypatch):
        break_ledger_appends(monkeypatch)
        ok = store.append_ledger_event(
            {"event": "service_pending", "run_id": "d1"}
        )
        assert ok is False
        assert store.ledger_write_errors == 1
