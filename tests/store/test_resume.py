"""Resumable sweeps: the ISSUE's acceptance criterion, as a test.

Cold run == warm run byte-for-byte (serial and parallel), a warm run
performs zero simulations, and a store with half its records deleted
(the killed-sweep state) recomputes only the missing cells.
"""

import json

import pytest

from repro.api import SweepRequest, run_sweep
from repro.experiments.scenarios import ScenarioConfig, seed_sweep
from repro.store import ExperimentStore, detection_cache_key, record_line

DURATION = 5.0


def _configs(n=4):
    base = ScenarioConfig(app="zoom", duration=DURATION, seed=0)
    return list(seed_sweep(base, range(1, n + 1)))


def run_detection_sweep(configs, **kwargs):
    return run_sweep(SweepRequest.detection(configs, **kwargs)).results


def _counting(monkeypatch):
    """Count actual cell simulations (serial path only)."""
    import repro.parallel.executor as executor

    calls = []
    real = executor.run_detection_experiment

    def counted(config, **kwargs):
        calls.append(config.seed)
        return real(config, **kwargs)

    monkeypatch.setattr(executor, "run_detection_experiment", counted)
    return calls


@pytest.fixture(scope="module")
def cold_records():
    return run_detection_sweep(_configs(), jobs=1)


class TestCacheReuse:
    def test_warm_run_is_byte_identical_and_simulates_nothing(
        self, tmp_path, monkeypatch, cold_records
    ):
        configs = _configs()
        store = ExperimentStore(tmp_path / "store")
        first = run_detection_sweep(configs, jobs=1, store=store)
        calls = _counting(monkeypatch)
        warm = run_detection_sweep(configs, jobs=1, store=store)
        assert calls == [], "warm run must not simulate"
        cold_lines = [record_line(r) for r in cold_records]
        assert [record_line(r) for r in first] == cold_lines
        assert [record_line(r) for r in warm] == cold_lines

    def test_warm_run_identical_under_parallel_jobs(self, tmp_path, cold_records):
        configs = _configs()
        store = ExperimentStore(tmp_path / "store")
        run_detection_sweep(configs, jobs=4, store=store)
        warm = run_detection_sweep(configs, jobs=4, store=store)
        assert [record_line(r) for r in warm] == [
            record_line(r) for r in cold_records
        ]
        assert store.ledger_runs()[-1]["misses"] == 0

    def test_no_cache_recomputes_every_cell(self, tmp_path, monkeypatch):
        configs = _configs(n=2)
        store = ExperimentStore(tmp_path / "store")
        run_detection_sweep(configs, jobs=1, store=store)
        calls = _counting(monkeypatch)
        run_detection_sweep(configs, jobs=1, store=store, no_cache=True)
        assert len(calls) == len(configs)
        assert store.ledger_runs()[-1]["hits"] == 0


class TestResumeAfterKill:
    def _delete_keys(self, store, keys):
        """Surgically remove ``keys`` from the shards (the killed-sweep
        state: some cells checkpointed, some never written)."""
        doomed = set(keys)
        for shard in store.shard_dir.glob("shard-*.jsonl"):
            lines = [
                line
                for line in shard.read_text().splitlines()
                if json.loads(line)["key"] not in doomed
            ]
            if lines:
                shard.write_text("".join(line + "\n" for line in lines))
            else:
                shard.unlink()

    def test_resume_computes_only_missing_cells(
        self, tmp_path, monkeypatch, cold_records
    ):
        configs = _configs()
        store = ExperimentStore(tmp_path / "store")
        run_detection_sweep(configs, jobs=1, store=store)
        keys = [
            detection_cache_key(config, fingerprint=store.fingerprint)
            for config in configs
        ]
        # Kill scenario: the second half of the sweep never checkpointed.
        self._delete_keys(store, keys[len(keys) // 2:])
        resumed_store = ExperimentStore(tmp_path / "store")
        calls = _counting(monkeypatch)
        resumed = run_detection_sweep(configs, jobs=1, store=resumed_store)
        assert calls == [config.seed for config in configs[len(configs) // 2:]]
        assert [record_line(r) for r in resumed] == [
            record_line(r) for r in cold_records
        ]
        run = resumed_store.ledger_runs()[-1]
        assert run["hits"] == len(configs) // 2
        assert run["misses"] == len(configs) - len(configs) // 2
