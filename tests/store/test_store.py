"""Store round-trip, staleness, corruption tolerance, gc, and the ledger."""

import json

from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.runner import DetectionExperimentRecord
from repro.store import (
    ExperimentStore,
    config_from_dict,
    config_to_dict,
    record_from_dict,
    record_line,
    record_to_dict,
)


def _record(seed=0, **kwargs):
    config = ScenarioConfig(app="zoom", duration=8.0, seed=seed)
    return DetectionExperimentRecord(
        config=config,
        verdicts={"loss_trend": True},
        retx_rate=0.125,
        queuing_delay=0.01,
        loss_rate_1=0.004,
        loss_rate_2=0.0055,
        differentiation_visible=True,
        **kwargs,
    )


def _store(tmp_path, **kwargs):
    kwargs.setdefault("fingerprint", "testfp")
    return ExperimentStore(tmp_path / "store", **kwargs)


class TestRoundTrip:
    def test_config_round_trip(self):
        config = ScenarioConfig(
            app="netflix", background_modulation=((0.2, 0.3, 0.8), (1.0, 0.35, 0.85))
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_hybrid_config_round_trip(self):
        config = ScenarioConfig(app="netflix", fidelity="hybrid")
        assert config_from_dict(config_to_dict(config)) == config

    def test_pre_fidelity_record_dict_still_loads(self):
        # Records persisted before the fidelity field existed carry no
        # "fidelity" key; they must deserialize as packet-mode configs.
        data = config_to_dict(ScenarioConfig(app="netflix"))
        del data["fidelity"]
        assert config_from_dict(data).fidelity == "packet"

    def test_record_round_trip_is_byte_identical(self):
        record = _record()
        loaded = record_from_dict(record_to_dict(record))
        assert record_line(loaded) == record_line(record)
        assert loaded.config == record.config

    def test_aborted_record_round_trip(self):
        record = _record(status="aborted")
        loaded = record_from_dict(record_to_dict(record))
        assert loaded.aborted
        assert record_line(loaded) == record_line(record)

    def test_put_get_through_disk(self, tmp_path):
        store = _store(tmp_path)
        store.put("ab" + "0" * 62, record_to_dict(_record()))
        # A fresh instance must read from disk, not the writer's memory.
        fresh = _store(tmp_path)
        payload = fresh.get("ab" + "0" * 62)
        assert record_line(record_from_dict(payload)) == record_line(_record())

    def test_get_missing_is_none(self, tmp_path):
        assert _store(tmp_path).get("ff" + "0" * 62) is None

    def test_append_wins(self, tmp_path):
        store = _store(tmp_path)
        key = "cd" + "0" * 62
        store.put(key, record_to_dict(_record(seed=0)))
        store.put(key, record_to_dict(_record(seed=1)))
        fresh = _store(tmp_path)
        assert fresh.get(key)["config"]["seed"] == 1


class TestStaleness:
    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        old = _store(tmp_path, schema_version=1)
        key = "ab" + "1" * 62
        old.put(key, record_to_dict(_record()))
        new = _store(tmp_path, schema_version=2)
        assert new.get(key) is None

    def test_fingerprint_mismatch_is_a_miss_until_code_reverts(self, tmp_path):
        key = "ab" + "2" * 62
        _store(tmp_path, fingerprint="old").put(key, record_to_dict(_record()))
        assert _store(tmp_path, fingerprint="new").get(key) is None
        # Flipping back to the old code revalidates the old entries.
        assert _store(tmp_path, fingerprint="old").get(key) is not None


class TestCorruptionTolerance:
    def _shard_paths(self, store):
        return sorted(store.shard_dir.glob("shard-*.jsonl"))

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        store = _store(tmp_path)
        key = "ee" + "0" * 62
        store.put(key, record_to_dict(_record()))
        (shard,) = self._shard_paths(store)
        with open(shard, "a") as fh:
            fh.write("this is not json\n")
            fh.write('{"key": "truncated envelope"}\n')
            fh.write('["not", "a", "dict"]\n')
            fh.write('{"key": "xy", "schema_version"')  # torn tail, no newline
        fresh = _store(tmp_path)
        assert fresh.get(key) is not None
        assert fresh.skipped_lines == 4

    def test_fully_garbage_shard_never_crashes(self, tmp_path):
        store = _store(tmp_path)
        (store.shard_dir / "shard-aa.jsonl").write_bytes(b"\x00\xff garbage\n{{{\n")
        assert store.get("aa" + "0" * 62) is None

    def test_gc_compacts_and_drops_stale(self, tmp_path):
        old = _store(tmp_path, fingerprint="old")
        new = _store(tmp_path, fingerprint="testfp")
        key_stale = "aa" + "3" * 62
        key_live = "aa" + "4" * 62
        old.put(key_stale, record_to_dict(_record()))
        new.put(key_live, record_to_dict(_record(seed=0)))
        new.put(key_live, record_to_dict(_record(seed=1)))  # superseded line
        (shard,) = self._shard_paths(new)
        with open(shard, "a") as fh:
            fh.write("garbage\n")
        result = _store(tmp_path).gc()
        assert result == {"kept": 1, "removed": 3, "dry_run": False}
        survivor = _store(tmp_path)
        assert survivor.get(key_live)["config"]["seed"] == 1
        assert survivor.get(key_stale) is None
        # The shard on disk now holds exactly one intact line.
        lines = shard.read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["key"] == key_live

    def test_gc_dry_run_touches_nothing(self, tmp_path):
        store = _store(tmp_path)
        key = "bb" + "0" * 62
        store.put(key, record_to_dict(_record(seed=0)))
        store.put(key, record_to_dict(_record(seed=1)))
        result = _store(tmp_path).gc(dry_run=True)
        assert result["removed"] == 1
        (shard,) = self._shard_paths(store)
        assert len(shard.read_text().splitlines()) == 2


class TestLedger:
    def test_runs_record_hits_and_misses(self, tmp_path):
        store = _store(tmp_path)
        run_id = store.begin_run(kind="detection_sweep", cells=4, hits=1)
        store.finish_run(run_id, kind="detection_sweep", cells=4, hits=1, misses=3)
        (run,) = _store(tmp_path).ledger_runs()
        assert run["run_id"] == run_id
        assert (run["cells"], run["hits"], run["misses"]) == (4, 1, 3)
        assert run["status"] == "complete"

    def test_unfinished_run_reads_as_interrupted(self, tmp_path):
        store = _store(tmp_path)
        store.begin_run(kind="detection_sweep", cells=4, hits=0)
        (run,) = _store(tmp_path).ledger_runs()
        assert run["status"] == "interrupted"
        assert run["misses"] is None

    def test_corrupt_ledger_lines_are_skipped(self, tmp_path):
        store = _store(tmp_path)
        run_id = store.begin_run(kind="tdiff", cells=1, hits=0)
        with open(store.ledger_path, "a") as fh:
            fh.write("not json\n")
        store.finish_run(run_id, kind="tdiff", cells=1, hits=0, misses=1)
        (run,) = _store(tmp_path).ledger_runs()
        assert run["status"] == "complete"
