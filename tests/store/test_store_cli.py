"""The ``python -m repro.store`` surface and the sweep flag validation."""

import json

from repro.cli import main as cli_main
from repro.experiments.runner import DetectionExperimentRecord
from repro.experiments.scenarios import ScenarioConfig
from repro.store import ExperimentStore, record_to_dict
from repro.store.__main__ import main as store_main


def _record(seed=0):
    return DetectionExperimentRecord(
        config=ScenarioConfig(app="zoom", duration=8.0, seed=seed),
        verdicts={"loss_trend": True},
        loss_rate_1=0.004,
        loss_rate_2=0.0055,
    )


def _populated(tmp_path):
    store = ExperimentStore(tmp_path / "store")
    store.put("aa" + "0" * 62, record_to_dict(_record(seed=0)))
    store.put("bb" + "0" * 62, record_to_dict(_record(seed=1)))
    run_id = store.begin_run(kind="detection_sweep", cells=2, hits=0)
    store.finish_run(run_id, kind="detection_sweep", cells=2, hits=0, misses=2)
    return store


class TestStoreCli:
    def test_ls(self, tmp_path, capsys):
        store = _populated(tmp_path)
        assert store_main(["--root", str(store.root), "ls"]) == 0
        out = capsys.readouterr().out
        assert "detection" in out and "app=zoom" in out
        assert len(out.strip().splitlines()) == 2

    def test_ls_kind_filter(self, tmp_path, capsys):
        store = _populated(tmp_path)
        store.put("cc" + "0" * 62, {"kind": "tdiff", "value": 0.1})
        assert store_main(["--root", str(store.root), "ls", "--kind", "tdiff"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1 and "tdiff" in lines[0]

    def test_show_by_prefix(self, tmp_path, capsys):
        store = _populated(tmp_path)
        assert store_main(["--root", str(store.root), "show", "aa"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["payload"]["config"]["seed"] == 0

    def test_show_unknown_prefix_fails(self, tmp_path, capsys):
        store = _populated(tmp_path)
        assert store_main(["--root", str(store.root), "show", "ff"]) == 1

    def test_stats_json(self, tmp_path, capsys):
        store = _populated(tmp_path)
        assert store_main(["--root", str(store.root), "stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 2
        assert stats["runs"] == 1

    def test_gc(self, tmp_path, capsys):
        store = _populated(tmp_path)
        key = "aa" + "0" * 62
        store.put(key, record_to_dict(_record(seed=7)))  # supersede
        assert store_main(["--root", str(store.root), "gc"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert ExperimentStore(store.root).get(key)[
            "config"
        ]["seed"] == 7


class TestSweepFlagValidation:
    def test_resume_without_store_errors(self, capsys):
        assert cli_main(["sweep", "--seeds", "1", "--resume"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_no_cache_without_store_errors(self, capsys):
        assert cli_main(["sweep", "--seeds", "1", "--no-cache"]) == 2
        assert "--store" in capsys.readouterr().err
