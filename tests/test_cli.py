"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_localize_defaults(self):
        args = build_parser().parse_args(["localize"])
        assert args.app == "netflix"
        assert args.limiter == "common"
        assert not args.merge_flows

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "--limiter", "noncommon", "--seeds", "3", "--app", "zoom"]
        )
        assert args.seeds == 3
        assert args.limiter == "noncommon"

    def test_fidelity_defaults_to_packet(self):
        args = build_parser().parse_args(["sweep"])
        assert args.fidelity == "packet"
        args = build_parser().parse_args(["sweep", "--fidelity", "hybrid"])
        assert args.fidelity == "hybrid"

    def test_rejects_unknown_fidelity(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--fidelity", "quantum"])

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["localize", "--app", "geocities"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_topology_command_runs(self, capsys):
        code = main(["topology", "--isps", "4", "--clients", "3", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "complete fraction" in out
        assert "topology-db entries" in out

    def test_topology_command_policy_internet(self, capsys):
        code = main(["topology", "--ases", "200", "--isps", "4",
                     "--clients", "2", "--seed", "1",
                     "--backend", "columnar"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AS graph" in out
        assert "oracle precision" in out

    def test_topology_command_dynamics(self, capsys):
        code = main(["topology", "--ases", "200", "--isps", "4",
                     "--clients", "2", "--seed", "1",
                     "--dynamics-events", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stale entries" in out

    def test_localize_command_detects_common_limiter(self, capsys):
        code = main(
            ["localize", "--app", "zoom", "--limiter", "common",
             "--duration", "30", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert "outcome" in out
        assert code == 0  # evidence found

    def test_sweep_command_reports_rates(self, capsys):
        code = main(
            ["sweep", "--app", "zoom", "--limiter", "common",
             "--duration", "25", "--seeds", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FN rate:" in out


class TestShaperArguments:
    def test_shaper_defaults_to_none(self):
        args = build_parser().parse_args(["sweep"])
        assert args.shaper is None
        assert args.shaper_params is None

    def test_shaper_and_params_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--shaper", "red", "--shaper-params", "max_p=0.2,w_q=0.1"]
        )
        assert args.shaper == "red"
        assert args.shaper_params == "max_p=0.2,w_q=0.1"

    def test_param_value_coercion(self):
        from repro.cli import _parse_shaper_params

        assert _parse_shaper_params("max_p=0.2,count=3,ecn=true,name=x") == (
            ("max_p", 0.2),
            ("count", 3),
            ("ecn", True),
            ("name", "x"),
        )

    def test_malformed_params_are_a_usage_error(self, capsys):
        code = main(
            ["sweep", "--app", "zoom", "--seeds", "1", "--duration", "4",
             "--shaper", "red", "--shaper-params", "nonsense"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_shaper_is_a_usage_error(self, capsys):
        code = main(
            ["sweep", "--app", "zoom", "--seeds", "1", "--duration", "4",
             "--shaper", "wfq"]
        )
        assert code == 2
        assert "unknown qdisc" in capsys.readouterr().err

    def test_sweep_with_shaper_runs(self, capsys):
        code = main(
            ["sweep", "--app", "zoom", "--limiter", "common", "--seeds", "1",
             "--duration", "4", "--shaper", "red"]
        )
        assert code == 0
        assert "FN rate:" in capsys.readouterr().out


class TestQdiscCommand:
    def test_lists_registered_mechanisms(self, capsys):
        code = main(["qdisc"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("tbf", "red", "codel", "pie", "dual_tbf", "conditional"):
            assert name in out

    def test_build_smoke(self, capsys):
        code = main(["qdisc", "--build"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "FAILED" not in out


class TestMultipathArguments:
    def test_multipath_defaults_off(self):
        args = build_parser().parse_args(["sweep"])
        assert args.multipath == 0
        assert args.flowlet_gap is None

    def test_multipath_and_gap_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--multipath", "4", "--flowlet-gap", "0.03"]
        )
        assert args.multipath == 4
        assert args.flowlet_gap == 0.03

    def test_scenario_threading(self):
        from repro.cli import _scenario_from

        args = build_parser().parse_args(
            ["localize", "--app", "zoom", "--multipath", "2",
             "--flowlet-gap", "0.05"]
        )
        config = _scenario_from(args)
        assert config.multipath == 2
        assert config.flowlet_gap_s == 0.05
        plain = _scenario_from(build_parser().parse_args(["localize"]))
        assert plain.multipath == 0
        assert plain.flowlet_gap_s is None

    def test_gap_without_multipath_is_a_usage_error(self, capsys):
        code = main(
            ["sweep", "--app", "zoom", "--seeds", "1", "--duration", "4",
             "--flowlet-gap", "0.03"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_with_multipath_runs(self, capsys):
        code = main(
            ["sweep", "--app", "zoom", "--limiter", "common", "--seeds", "1",
             "--duration", "4", "--multipath", "2"]
        )
        assert code == 0
        assert "FN rate:" in capsys.readouterr().out
