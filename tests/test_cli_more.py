"""CLI behaviour with the extension scenarios."""

from repro.cli import main


class TestCliExtensions:
    def test_perflow_without_merge_finds_nothing(self, capsys):
        code = main(
            ["localize", "--app", "zoom", "--limiter", "perflow",
             "--duration", "25", "--seed", "4"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "no-evidence" in out

    def test_perflow_with_merge_localizes(self, capsys):
        code = main(
            ["localize", "--app", "zoom", "--limiter", "perflow",
             "--merge-flows", "--duration", "25", "--seed", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "evidence-in-target-area" in out

    def test_fp_sweep_on_independent_limiters(self, capsys):
        code = main(
            ["sweep", "--app", "zoom", "--limiter", "noncommon",
             "--duration", "25", "--seeds", "2"]
        )
        assert code == 0
        assert "FP rate:" in capsys.readouterr().out
