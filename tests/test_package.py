"""Package-level tests: public API surface and imports."""

import importlib

import pytest


PUBLIC_MODULES = [
    "repro",
    "repro.cli",
    "repro.core",
    "repro.core.coordinator",
    "repro.core.localizer",
    "repro.core.loss_correlation",
    "repro.core.packet_pair",
    "repro.core.throughput_comparison",
    "repro.core.tomography",
    "repro.experiments",
    "repro.experiments.metrics",
    "repro.experiments.runner",
    "repro.experiments.scenarios",
    "repro.experiments.tdiff",
    "repro.experiments.wild",
    "repro.mlab",
    "repro.mlab.annotations",
    "repro.mlab.internet",
    "repro.mlab.tables",
    "repro.mlab.topology_construction",
    "repro.mlab.traceroute",
    "repro.mlab.verification",
    "repro.netsim",
    "repro.netsim.background",
    "repro.netsim.bbr",
    "repro.netsim.capture",
    "repro.netsim.engine",
    "repro.netsim.link",
    "repro.netsim.packet",
    "repro.netsim.path",
    "repro.netsim.per_flow",
    "repro.netsim.queues",
    "repro.netsim.tcp",
    "repro.netsim.token_bucket",
    "repro.netsim.topology",
    "repro.netsim.udp",
    "repro.stats",
    "repro.stats.bootstrap",
    "repro.stats.empirical",
    "repro.stats.ks",
    "repro.stats.montecarlo",
    "repro.stats.mwu",
    "repro.stats.spearman",
    "repro.stats.special",
    "repro.wehe",
    "repro.wehe.apps",
    "repro.wehe.corpus",
    "repro.wehe.detection",
    "repro.wehe.loss_measurement",
    "repro.wehe.replay",
    "repro.wehe.trace_io",
    "repro.wehe.traces",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_version():
    import repro

    assert repro.__version__


def test_netsim_public_api():
    import repro.netsim as netsim

    for name in netsim.__all__:
        assert hasattr(netsim, name)


def test_stats_public_api():
    import repro.stats as stats

    for name in stats.__all__:
        assert hasattr(stats, name)


def test_core_public_api():
    import repro.core as core

    for name in core.__all__:
        assert hasattr(core, name)
