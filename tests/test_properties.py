"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.capture import PathMeasurements, binned_loss_series
from repro.netsim.packet import DATA, Packet
from repro.netsim.token_bucket import TokenBucketFilter
from repro.stats.empirical import ecdf
from repro.stats.mwu import mann_whitney_u
from repro.stats.spearman import rankdata, spearman_rho
from repro.wehe.traces import Trace, bit_invert, extend_to_duration

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestTokenBucketProperties:
    @given(
        rate=st.floats(min_value=1e3, max_value=1e8),
        burst=st.integers(min_value=1500, max_value=100_000),
        n_packets=st.integers(min_value=1, max_value=60),
        horizon=st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_never_exceeds_rate_times_time_plus_burst(
        self, rate, burst, n_packets, horizon
    ):
        tbf = TokenBucketFilter(rate, burst, 10_000_000)
        for i in range(n_packets):
            tbf.enqueue(Packet("f", DATA, i, 1500), 0.0)
        drained = 0
        now = 0.0
        while now <= horizon:
            packet, wake = tbf.dequeue(now)
            if packet is not None:
                drained += packet.size
            elif wake is None:
                break
            elif wake > horizon:
                break
            else:
                now = wake
        assert drained <= rate / 8.0 * horizon + burst + 1500

    @given(st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_tokens_never_exceed_burst(self, when):
        tbf = TokenBucketFilter(1e6, 5000, 10_000)
        assert tbf.tokens(when) <= 5000


class TestQdiscProperties:
    MECHANISMS = ("tbf", "red", "ecn", "codel", "pie", "dual_tbf", "conditional")

    @given(
        mechanism=st.sampled_from(MECHANISMS),
        rate=st.floats(min_value=5e5, max_value=2e7),
        n_packets=st.integers(min_value=1, max_value=120),
        gap=st.floats(min_value=1e-5, max_value=0.01),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_mechanism_conserves_packets(
        self, mechanism, rate, n_packets, gap, seed
    ):
        from repro.netsim.qdisc import make_qdisc

        device = make_qdisc(
            mechanism, rate_bps=rate, fifo_capacity=30_000, seed=seed
        ) if mechanism in ("red", "ecn", "pie") else make_qdisc(
            mechanism, rate_bps=rate, fifo_capacity=30_000
        )
        accepted = rejected = dequeued = 0
        now = 0.0
        for i in range(n_packets):
            ok = device.enqueue(
                Packet(f"f{i % 5}", DATA, i, 1500, dscp=i % 3 != 0), now
            )
            accepted += ok
            rejected += not ok
            if i % 4 == 0:
                got, _ = device.dequeue(now)
                dequeued += got is not None
            now += gap
        while True:
            got, wake = device.dequeue(now)
            if got is not None:
                dequeued += 1
            elif wake is None:
                break
            else:
                now = wake
        head_drops = device.drops - rejected
        assert head_drops >= 0
        assert accepted == dequeued + head_drops + len(device)
        assert device.drops_bytes == device.drops * 1500

    @given(
        mechanism=st.sampled_from(MECHANISMS),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_seeded_device_is_byte_deterministic(self, mechanism, seed):
        from repro.netsim.qdisc import make_qdisc

        def run():
            kwargs = {"rate_bps": 1e6, "fifo_capacity": 30_000}
            if mechanism in ("red", "ecn", "pie"):
                kwargs["seed"] = seed
            device = make_qdisc(mechanism, **kwargs)
            now = 0.0
            for i in range(150):
                device.enqueue(
                    Packet(f"f{i % 5}", DATA, i, 1500, dscp=i % 4 != 0), now
                )
                if i % 3 == 0:
                    device.dequeue(now)
                now += 0.0004
            return (device.drops, device.drops_bytes,
                    device.backlog_bytes, len(device))

        assert run() == run()

    @given(
        shaper=st.sampled_from(MECHANISMS),
        params=st.sampled_from(
            (
                (),
                (("rtt_s", 0.05),),
                (("queue_factor", 1.0), ("fifo_capacity", 250_000)),
            )
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_shaper_config_round_trips_through_serialization(
        self, shaper, params
    ):
        from repro.experiments.scenarios import ScenarioConfig
        from repro.store.serialize import config_from_dict, config_to_dict

        config = ScenarioConfig(
            app="netflix", duration=5.0, shaper=shaper, shaper_params=params
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored == config
        assert restored.shaper_params == params


class TestEcdfProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=200))
    @settings(max_examples=80)
    def test_monotone_nondecreasing_and_ends_at_one(self, samples):
        xs, ps = ecdf(samples)
        assert np.all(np.diff(ps) >= 0)
        assert ps[-1] == 1.0
        assert np.all(np.diff(xs) > 0) or len(xs) == 1


class TestRankProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=100))
    @settings(max_examples=80)
    def test_ranks_sum_invariant(self, values):
        n = len(values)
        assert rankdata(values).sum() == n * (n + 1) / 2

    @given(st.lists(finite_floats, min_size=3, max_size=100, unique=True))
    @settings(max_examples=60)
    def test_spearman_bounded_and_symmetric(self, values):
        rng = np.random.default_rng(abs(hash(tuple(values))) % 2**31)
        other = list(rng.permutation(values))
        rho = spearman_rho(values, other)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9
        assert spearman_rho(other, values) == rho

    @given(st.lists(finite_floats, min_size=3, max_size=60, unique=True))
    @settings(max_examples=60)
    def test_spearman_self_correlation_is_one(self, values):
        assert spearman_rho(values, values) == 1.0


class TestMwuProperties:
    @given(
        st.lists(finite_floats, min_size=2, max_size=60),
        st.lists(finite_floats, min_size=2, max_size=60),
    )
    @settings(max_examples=60)
    def test_pvalue_in_unit_interval(self, x, y):
        for alternative in ("less", "greater", "two-sided"):
            result = mann_whitney_u(x, y, alternative=alternative)
            assert 0.0 <= result.pvalue <= 1.0

    @given(st.lists(finite_floats, min_size=5, max_size=60, unique=True))
    @settings(max_examples=40)
    def test_one_sided_pvalues_complementary_direction(self, x):
        shifted = [v + 1.0 for v in x]
        less = mann_whitney_u(x, shifted, alternative="less").pvalue
        greater = mann_whitney_u(x, shifted, alternative="greater").pvalue
        assert less <= greater


class TestTraceProperties:
    @st.composite
    def traces(draw):
        n = draw(st.integers(min_value=2, max_value=60))
        gaps = draw(
            st.lists(
                st.floats(min_value=1e-4, max_value=0.5),
                min_size=n,
                max_size=n,
            )
        )
        sizes = draw(
            st.lists(
                st.integers(min_value=1, max_value=1500), min_size=n, max_size=n
            )
        )
        times = np.cumsum(gaps)
        schedule = tuple((float(t), s) for t, s in zip(times, sizes))
        return Trace("app", "udp", schedule, sni="x.com")

    @given(traces())
    @settings(max_examples=60)
    def test_bit_invert_is_schedule_preserving_involution(self, trace):
        inverted = bit_invert(trace)
        assert inverted.schedule == trace.schedule
        assert bit_invert(inverted).schedule == trace.schedule
        assert inverted.sni is None

    @given(traces(), st.floats(min_value=1.0, max_value=120.0))
    @settings(max_examples=60, deadline=None)
    def test_extension_reaches_duration_and_preserves_bytes_ratio(
        self, trace, min_duration
    ):
        extended = extend_to_duration(trace, min_duration)
        assert extended.duration >= min(min_duration, trace.duration)
        assert extended.n_packets % trace.n_packets == 0
        repeats = extended.n_packets // trace.n_packets
        assert extended.total_bytes == repeats * trace.total_bytes


class TestBinningProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        interval=st.floats(min_value=0.2, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_series_equal_length_and_rates_nonnegative(self, seed, interval):
        rng = np.random.default_rng(seed)
        sends = np.sort(rng.uniform(0, 30, 2000))
        m1 = PathMeasurements(sends, rng.uniform(0, 30, 50), 0.03)
        m2 = PathMeasurements(sends, rng.uniform(0, 30, 50), 0.03)
        s1, s2 = binned_loss_series(m1, m2, interval)
        assert len(s1) == len(s2)
        assert np.all(s1 >= 0) and np.all(s2 >= 0)
