"""App trace-library statistical-shape tests."""

import numpy as np
import pytest

from repro.wehe.apps import APP_SPECS, TCP_APPS, UDP_APPS, make_trace
from repro.wehe.trace_io import trace_statistics


@pytest.fixture
def rng():
    return np.random.default_rng(29)


class TestUdpShapes:
    def test_talk_spurts_create_gap_structure(self, rng):
        trace = make_trace("whatsapp", 60.0, rng)
        times = np.array([t for t, _ in trace.schedule])
        gaps = np.diff(times)
        # On/off structure: some gaps far exceed the packetization
        # interval (off periods).
        interval = APP_SPECS["whatsapp"].packet_interval
        assert gaps.max() > 10 * interval
        assert np.median(gaps) < 2 * interval

    def test_size_mixture_respected(self, rng):
        spec = APP_SPECS["zoom"]
        trace = make_trace("zoom", 60.0, rng)
        sizes = {s for _, s in trace.schedule}
        expected = {size for size, _ in spec.packet_sizes}
        assert sizes <= expected
        assert len(sizes) == len(expected)

    def test_apps_have_distinct_rates(self, rng):
        rates = {
            app: make_trace(app, 60.0, rng).mean_rate_bps for app in UDP_APPS
        }
        assert len({round(r / 1e5) for r in rates.values()}) >= 3


class TestTcpShapes:
    def test_chunked_structure(self, rng):
        trace = make_trace("netflix", 30.0, rng)
        times = np.array([t for t, _ in trace.schedule])
        gaps = np.diff(times)
        # Chunk boundaries: a few large gaps near the chunk period.
        chunk_gaps = gaps[gaps > 0.5]
        assert len(chunk_gaps) >= 10
        assert np.median(chunk_gaps) == pytest.approx(
            APP_SPECS["netflix"].chunk_period, rel=0.5
        )

    def test_rate_scales_with_spec(self, rng):
        stats = {
            app: trace_statistics(make_trace(app, 30.0, rng)) for app in TCP_APPS
        }
        # Ordering of nominal rates is preserved in generated traces.
        nominal = sorted(TCP_APPS, key=lambda a: APP_SPECS[a].rate_bps)
        generated = sorted(TCP_APPS, key=lambda a: stats[a]["mean_rate_bps"])
        assert nominal[-1] == generated[-1]  # fastest app is fastest trace
