"""Area Test (WeHe's second statistic) tests."""

import numpy as np
import pytest

from repro.wehe.detection import area_test_statistic, detect_differentiation


@pytest.fixture
def rng():
    return np.random.default_rng(37)


class TestAreaStatistic:
    def test_identical_samples_zero(self, rng):
        samples = rng.normal(5e6, 0.5e6, 200)
        assert area_test_statistic(samples, samples) == 0.0

    def test_disjoint_samples_large(self, rng):
        low = rng.uniform(1e6, 1.1e6, 100)
        high = rng.uniform(9e6, 9.1e6, 100)
        assert area_test_statistic(low, high) > 0.9

    def test_bounded(self, rng):
        for _ in range(10):
            x = rng.uniform(0, 10, 50)
            y = rng.uniform(0, 10, 50)
            assert 0.0 <= area_test_statistic(x, y) <= 1.0

    def test_symmetric(self, rng):
        x = rng.normal(3e6, 1e6, 80)
        y = rng.normal(5e6, 1e6, 80)
        assert area_test_statistic(x, y) == pytest.approx(
            area_test_statistic(y, x)
        )

    def test_degenerate_single_value(self):
        assert area_test_statistic([1.0, 1.0], [1.0]) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            area_test_statistic([], [1.0])


class TestAreaInDetection:
    def test_throttled_replay_has_large_area(self, rng):
        original = rng.normal(2e6, 0.1e6, 100)
        inverted = rng.normal(8e6, 0.4e6, 100)
        result = detect_differentiation(original, inverted)
        assert result.area_statistic > 0.5
        assert result.differentiated

    def test_identical_replays_have_small_area(self, rng):
        samples = rng.normal(5e6, 0.5e6, 100)
        result = detect_differentiation(samples, samples * rng.normal(1, 0.01, 100))
        assert result.area_statistic < 0.2
