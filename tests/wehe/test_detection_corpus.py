"""WeHe detection, loss estimation, and T_diff corpus tests."""

import numpy as np
import pytest

from repro.wehe.corpus import (
    PAIR_WINDOW_SECONDS,
    HistoricalTest,
    generate_corpus,
    tdiff_distribution,
)
from repro.wehe.detection import detect_differentiation
from repro.wehe.loss_measurement import RetransmissionLossEstimator


@pytest.fixture
def rng():
    return np.random.default_rng(23)


class TestDetection:
    def test_throttled_original_is_detected(self, rng):
        original = rng.normal(2e6, 0.1e6, 100)
        inverted = rng.normal(8e6, 0.4e6, 100)
        result = detect_differentiation(original, inverted)
        assert result.differentiated
        assert result.throttled
        assert result.pvalue < 1e-6

    def test_identical_distributions_pass(self, rng):
        samples = rng.normal(5e6, 0.5e6, 100)
        result = detect_differentiation(samples, samples)
        assert not result.differentiated

    def test_tiny_gap_not_flagged(self, rng):
        # Statistically different but practically identical means.
        original = rng.normal(5.00e6, 1e4, 100)
        inverted = rng.normal(5.05e6, 1e4, 100)
        result = detect_differentiation(original, inverted, min_relative_gap=0.05)
        assert not result.differentiated

    def test_faster_original_is_differentiated_but_not_throttled(self, rng):
        original = rng.normal(8e6, 0.4e6, 100)
        inverted = rng.normal(2e6, 0.1e6, 100)
        result = detect_differentiation(original, inverted)
        assert result.differentiated
        assert not result.throttled

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            detect_differentiation([], [1.0])


class _FakeSender:
    def __init__(self, retx_log, packets_sent):
        self.retx_log = retx_log
        self.packets_sent = packets_sent


class TestLossEstimator:
    def test_passthrough_without_noise(self):
        sender = _FakeSender([(1.0, 0, "fast"), (2.0, 10, "rto")], 100)
        estimator = RetransmissionLossEstimator()
        assert estimator.loss_times(sender) == [1.0, 2.0]
        assert estimator.loss_rate(sender) == pytest.approx(0.02)

    def test_overcounting_adds_events(self, rng):
        sender = _FakeSender([(float(t), 0, "fast") for t in range(100)], 1000)
        estimator = RetransmissionLossEstimator(overcount_rate=0.5, rng=rng)
        times = estimator.loss_times(sender)
        assert len(times) > 100
        assert len(times) < 200

    def test_jitter_moves_registration_times(self, rng):
        sender = _FakeSender([(10.0, 0, "fast")] * 50, 1000)
        estimator = RetransmissionLossEstimator(registration_jitter=0.1, rng=rng)
        times = np.array(estimator.loss_times(sender))
        assert times.std() > 0.01
        assert np.all(times >= 0)

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError):
            RetransmissionLossEstimator(overcount_rate=0.1)

    def test_empty_log(self):
        sender = _FakeSender([], 0)
        estimator = RetransmissionLossEstimator()
        assert estimator.loss_times(sender) == []
        assert estimator.loss_rate(sender) == 0.0


class TestCorpus:
    def test_generated_corpus_yields_pairs(self, rng):
        corpus = generate_corpus(rng, n_clients=20, tests_per_client=4)
        tdiff = tdiff_distribution(corpus)
        assert len(tdiff) >= 20
        assert np.all(np.abs(tdiff) <= 1.0)

    def test_variation_scale_tracks_cv(self, rng):
        tight = tdiff_distribution(generate_corpus(rng, variation_cv=0.02))
        loose = tdiff_distribution(
            generate_corpus(np.random.default_rng(24), variation_cv=0.3)
        )
        assert np.abs(tight).mean() < np.abs(loose).mean()

    def test_pairing_respects_window_and_keys(self):
        far_apart = [
            HistoricalTest("c", "zoom", "x", 0.0, 1e6),
            HistoricalTest("c", "zoom", "x", PAIR_WINDOW_SECONDS + 1, 2e6),
        ]
        assert len(tdiff_distribution(far_apart)) == 0
        different_apps = [
            HistoricalTest("c", "zoom", "x", 0.0, 1e6),
            HistoricalTest("c", "skype", "x", 10.0, 2e6),
        ]
        assert len(tdiff_distribution(different_apps)) == 0
        good = [
            HistoricalTest("c", "zoom", "x", 0.0, 1e6),
            HistoricalTest("c", "zoom", "x", 10.0, 2e6),
        ]
        assert len(tdiff_distribution(good)) == 1

    def test_requires_two_tests_per_client(self, rng):
        with pytest.raises(ValueError):
            generate_corpus(rng, tests_per_client=1)
