"""Loss-estimator noise robustness against Algorithm 1.

The paper designs Algorithm 1 around two noise sources in server-side
loss measurement (overcounting and delayed registration); these tests
show the detector tolerates injected noise well beyond what the
simulator produces organically.
"""

import numpy as np
import pytest

from repro.core.loss_correlation import LossTrendCorrelation
from repro.netsim.capture import PathMeasurements
from repro.wehe.loss_measurement import RetransmissionLossEstimator


class _FakeSender:
    def __init__(self, retx_log, packets_sent=1000):
        self.retx_log = retx_log
        self.packets_sent = packets_sent


def correlated_measurements(rng, noise_estimator=None):
    sends = np.sort(rng.uniform(0, 60, 12000))
    trend = 1.0 + 0.8 * np.sin(2 * np.pi * sends / 8.0)
    out = []
    for _ in range(2):
        lost = sends[rng.random(len(sends)) < np.clip(0.03 * trend, 0, 1)]
        if noise_estimator is not None:
            sender = _FakeSender([(t, 0, "fast") for t in lost])
            lost = noise_estimator.loss_times(sender)
        out.append(PathMeasurements(sends, lost, 0.035))
    return out


@pytest.fixture
def rng():
    return np.random.default_rng(73)


class TestNoiseRobustness:
    def test_detection_survives_overcounting(self, rng):
        estimator = RetransmissionLossEstimator(overcount_rate=0.3, rng=rng)
        m1, m2 = correlated_measurements(rng, estimator)
        assert LossTrendCorrelation().detect(m1, m2).common_bottleneck

    def test_detection_survives_registration_jitter(self, rng):
        # Jitter of ~2 RTTs: well inside the 10-50 RTT interval sizes.
        estimator = RetransmissionLossEstimator(
            registration_jitter=0.07, rng=rng
        )
        m1, m2 = correlated_measurements(rng, estimator)
        assert LossTrendCorrelation().detect(m1, m2).common_bottleneck

    def test_detection_survives_both(self, rng):
        estimator = RetransmissionLossEstimator(
            overcount_rate=0.2, registration_jitter=0.05, rng=rng
        )
        m1, m2 = correlated_measurements(rng, estimator)
        assert LossTrendCorrelation().detect(m1, m2).common_bottleneck

    def test_extreme_jitter_eventually_breaks_it(self, rng):
        # Jitter comparable to the largest interval size destroys the
        # alignment -- the documented failure regime.
        estimator = RetransmissionLossEstimator(
            registration_jitter=3.0, rng=rng
        )
        m1, m2 = correlated_measurements(rng, estimator)
        result = LossTrendCorrelation().detect(m1, m2)
        assert result.correlated_fraction < 1.0
