"""Replay-endpoint tests: wiring traces onto the topology."""

import numpy as np
import pytest

from repro.netsim.engine import Simulator
from repro.netsim.topology import FigureOneTopology, TopologyConfig
from repro.wehe.apps import make_trace
from repro.wehe.replay import TraceAppSource, attach_replay
from repro.wehe.traces import bit_invert


@pytest.fixture
def rng():
    return np.random.default_rng(19)


def build(limiter=None, rate=3e6):
    sim = Simulator()
    topology = FigureOneTopology(
        sim, TopologyConfig(limiter=limiter, limiter_rate_bps=rate)
    )
    return sim, topology


class TestTraceAppSource:
    def test_availability_follows_schedule(self, rng):
        trace = make_trace("netflix", 10.0, rng)
        source = TraceAppSource(trace, start_at=1.0)
        assert source.available_bytes(0.5) == 0.0
        assert source.available_bytes(1.0 + trace.duration + 1) == trace.total_bytes

    def test_next_release_walks_schedule(self, rng):
        trace = make_trace("zoom", 5.0, rng)
        source = TraceAppSource(trace, start_at=0.0)
        release = source.next_release_after(0.0)
        assert release is not None and release > 0.0
        assert source.next_release_after(trace.duration + 1) is None

    def test_monotone_availability(self, rng):
        trace = make_trace("skype", 5.0, rng)
        source = TraceAppSource(trace)
        values = [source.available_bytes(t) for t in np.linspace(0, 6, 50)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestAttachReplay:
    def test_udp_replay_measures_loss_client_side(self, rng):
        sim, topology = build(limiter="common", rate=1.5e6)
        trace = make_trace("zoom", 20.0, rng)
        handle = attach_replay(sim, topology, 1, trace, start_at=0.5, duration=20.0)
        sim.run(until=22.0)
        measurements = handle.path_measurements()
        # The limiter is below the app rate: losses must be observed.
        assert measurements.packets_lost > 0
        assert measurements.packets_sent == handle.sender.packets_sent
        assert handle.retransmission_rate() > 0

    def test_tcp_replay_measures_loss_server_side(self, rng):
        sim, topology = build(limiter="common", rate=2e6)
        trace = make_trace("netflix", 20.0, rng)
        handle = attach_replay(sim, topology, 1, trace, start_at=0.5, duration=20.0)
        sim.run(until=22.0)
        measurements = handle.path_measurements()
        assert measurements.packets_lost == len(handle.sender.retx_log)
        assert handle.queuing_delay() >= 0.0

    def test_dscp_defaults_follow_sni(self, rng):
        sim, topology = build()
        original = make_trace("zoom", 5.0, rng)
        handle_orig = attach_replay(sim, topology, 1, original, duration=5.0)
        handle_inv = attach_replay(sim, topology, 2, bit_invert(original), duration=5.0)
        assert handle_orig.sender.dscp == 1
        assert handle_inv.sender.dscp == 0

    def test_short_trace_extended_to_duration(self, rng):
        sim, topology = build()
        trace = make_trace("zoom", 5.0, rng)
        handle = attach_replay(sim, topology, 1, trace, duration=30.0)
        assert handle.trace.duration >= 30.0 - 1.0

    def test_throughput_samples_shape(self, rng):
        sim, topology = build()
        trace = make_trace("zoom", 10.0, rng)
        handle = attach_replay(sim, topology, 1, trace, duration=10.0)
        sim.run(until=12.0)
        assert len(handle.throughput_samples()) == 100
        assert handle.mean_throughput() > 0

    def test_inverted_replay_not_throttled(self, rng):
        sim, topology = build(limiter="common", rate=1.5e6)
        trace = make_trace("zoom", 15.0, rng)
        handle = attach_replay(
            sim, topology, 1, bit_invert(trace), start_at=0.5, duration=15.0
        )
        sim.run(until=17.0)
        # dscp=0 bypasses the TBF: essentially no loss.
        assert handle.path_measurements().loss_rate < 0.01
