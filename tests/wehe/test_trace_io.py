"""Trace serialization tests."""

import numpy as np
import pytest

from repro.wehe.apps import make_trace
from repro.wehe.trace_io import (
    load_trace,
    save_trace,
    trace_from_dict,
    trace_statistics,
    trace_to_dict,
)
from repro.wehe.traces import bit_invert


@pytest.fixture
def trace():
    return make_trace("zoom", 10.0, np.random.default_rng(3))


class TestRoundTrip:
    def test_dict_round_trip(self, trace):
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.app == trace.app
        assert restored.protocol == trace.protocol
        assert restored.sni == trace.sni
        assert restored.schedule == trace.schedule

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "zoom.json"
        save_trace(trace, path)
        restored = load_trace(path)
        assert restored.schedule == trace.schedule

    def test_bit_inverted_trace_round_trips(self, trace, tmp_path):
        path = tmp_path / "inv.json"
        save_trace(bit_invert(trace), path)
        restored = load_trace(path)
        assert restored.sni is None
        assert not restored.is_original

    def test_unknown_version_rejected(self, trace):
        data = trace_to_dict(trace)
        data["version"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(data)


class TestStatistics:
    def test_fields_consistent_with_trace(self, trace):
        stats = trace_statistics(trace)
        assert stats["n_packets"] == trace.n_packets
        assert stats["total_bytes"] == trace.total_bytes
        assert stats["duration_s"] == pytest.approx(trace.duration)
        assert stats["mean_packet_bytes"] <= stats["max_packet_bytes"]
        assert stats["original"]

    def test_single_packet_trace(self):
        from repro.wehe.traces import Trace

        stats = trace_statistics(Trace("a", "udp", ((0.0, 500),)))
        assert stats["mean_gap_s"] == 0.0
        assert stats["n_packets"] == 1
