"""Trace model and WeHeY trace-transformation tests."""

import numpy as np
import pytest

from repro.wehe.apps import APP_SPECS, TCP_APPS, UDP_APPS, make_trace
from repro.wehe.traces import (
    MIN_REPLAY_DURATION,
    Trace,
    bit_invert,
    extend_to_duration,
    poissonize,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestTrace:
    def test_basic_properties(self):
        trace = Trace("app", "udp", ((0.0, 100), (1.0, 200)), sni="x.com")
        assert trace.n_packets == 2
        assert trace.total_bytes == 300
        assert trace.duration == 1.0
        assert trace.mean_rate_bps == pytest.approx(2400.0)
        assert trace.is_original

    def test_rejects_bad_protocol(self):
        with pytest.raises(ValueError):
            Trace("app", "sctp", ((0.0, 100),))

    def test_rejects_unsorted_schedule(self):
        with pytest.raises(ValueError):
            Trace("app", "udp", ((1.0, 100), (0.5, 100)))

    def test_rejects_empty_schedule(self):
        with pytest.raises(ValueError):
            Trace("app", "udp", ())

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            Trace("app", "udp", ((0.0, 0),))


class TestBitInvert:
    def test_destroys_sni_keeps_schedule(self, rng):
        original = make_trace("zoom", 10.0, rng)
        inverted = bit_invert(original)
        assert inverted.sni is None
        assert not inverted.is_original
        assert inverted.schedule == original.schedule
        assert inverted.app == original.app

    def test_involution_on_schedule(self, rng):
        original = make_trace("skype", 5.0, rng)
        twice = bit_invert(bit_invert(original))
        assert twice.schedule == original.schedule


class TestPoissonize:
    def test_preserves_sizes_count_and_mean_rate(self, rng):
        original = make_trace("webex", 30.0, rng)
        modified = poissonize(original, rng)
        assert modified.n_packets == original.n_packets
        assert [s for _, s in modified.schedule] == [s for _, s in original.schedule]
        assert modified.mean_rate_bps == pytest.approx(
            original.mean_rate_bps, rel=0.15
        )

    def test_times_become_exponential(self, rng):
        original = make_trace("zoom", 60.0, rng)
        modified = poissonize(original, rng)
        times = np.array([t for t, _ in modified.schedule])
        gaps = np.diff(times)
        # Exponential gaps: CV close to 1 (on/off trace gaps are not).
        cv = gaps.std() / gaps.mean()
        assert 0.8 < cv < 1.2

    def test_rejects_tcp(self, rng):
        trace = make_trace("netflix", 10.0, rng)
        with pytest.raises(ValueError):
            poissonize(trace, rng)

    def test_keeps_sni(self, rng):
        original = make_trace("zoom", 10.0, rng)
        assert poissonize(original, rng).sni == original.sni


class TestExtendToDuration:
    def test_short_trace_is_extended(self, rng):
        trace = make_trace("zoom", 5.0, rng)
        extended = extend_to_duration(trace)
        assert extended.duration >= MIN_REPLAY_DURATION

    def test_long_trace_untouched(self, rng):
        trace = make_trace("zoom", 60.0, rng)
        assert extend_to_duration(trace) is trace

    def test_extension_repeats_schedule(self, rng):
        trace = make_trace("skype", 10.0, rng)
        extended = extend_to_duration(trace, 30.0)
        n = trace.n_packets
        first_sizes = [s for _, s in extended.schedule[:n]]
        second_sizes = [s for _, s in extended.schedule[n : 2 * n]]
        assert first_sizes == second_sizes

    def test_times_remain_sorted(self, rng):
        trace = make_trace("whatsapp", 7.0, rng)
        extended = extend_to_duration(trace, 50.0)
        times = [t for t, _ in extended.schedule]
        assert all(b >= a for a, b in zip(times, times[1:]))


class TestAppLibrary:
    def test_all_apps_generate(self, rng):
        for app in APP_SPECS:
            trace = make_trace(app, 10.0, rng)
            assert trace.n_packets > 0
            assert trace.sni == APP_SPECS[app].sni

    def test_protocol_partition(self):
        assert set(TCP_APPS) | set(UDP_APPS) == set(APP_SPECS)
        assert not set(TCP_APPS) & set(UDP_APPS)

    def test_udp_rate_in_plausible_range(self, rng):
        for app in UDP_APPS:
            trace = make_trace(app, 60.0, rng)
            # within a factor ~2 of the spec's nominal rate
            assert 0.3 * APP_SPECS[app].rate_bps < trace.mean_rate_bps
            assert trace.mean_rate_bps < 2.0 * APP_SPECS[app].rate_bps

    def test_unknown_app_rejected(self, rng):
        with pytest.raises(KeyError):
            make_trace("myspace", 10.0, rng)

    def test_nonpositive_duration_rejected(self, rng):
        with pytest.raises(ValueError):
            make_trace("zoom", 0.0, rng)

    def test_tcp_traces_are_mss_packets(self, rng):
        trace = make_trace("netflix", 10.0, rng)
        assert all(size == 1448 for _, size in trace.schedule)
